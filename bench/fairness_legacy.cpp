// §5 "Fairness between MLTCP and TCP flows":
//  (1) Loss-response exponent: TCP throughput ~ 1/sqrt(p) (Mathis et al.);
//      the paper argues MLTCP-Reno behaves like ~1/p because its additive
//      increase grows with the bytes already sent. We sweep an injected
//      Bernoulli loss probability and fit the log-log slope for both.
//  (2) Coexistence: an MLTCP job sharing the bottleneck with a legacy Reno
//      bulk flow claims more than half the bandwidth but does not starve it.

#include <cmath>
#include <cstdio>
#include <vector>

#include "analysis/metrics.hpp"
#include "bench_common.hpp"
#include "net/topology.hpp"
#include "tcp/flow.hpp"

namespace {

using namespace mltcp;

/// Mean goodput (Gbps) of one periodic job over `iters` iterations on a
/// link with injected random loss.
double lossy_goodput(const tcp::CcFactory& cc, double loss_p) {
  sim::Simulator sim;
  net::DumbbellConfig dc;
  dc.hosts_per_side = 1;
  // A WAN-ish RTT (~4 ms) puts the flow into the loss-limited regime where
  // the Mathis relation is visible; with a microsecond RTT even tiny windows
  // saturate the link and throughput is insensitive to p.
  dc.bottleneck_delay = sim::milliseconds(2);
  dc.bottleneck_queue = net::make_random_drop_factory(loss_p, 512 * 1500);
  auto d = net::make_dumbbell(sim, dc);

  workload::Cluster cluster(sim);
  workload::JobSpec spec;
  spec.name = "probe";
  const std::int64_t bytes = 20'000'000;  // 20 MB per iteration
  spec.flows = workload::single_flow(d.left[0], d.right[0], bytes);
  spec.compute_time = sim::milliseconds(300);
  spec.max_iterations = 12;
  spec.cc = cc;
  workload::Job* job = cluster.add_job(spec);
  cluster.start_all();
  sim.run_until(sim::seconds(240));

  const auto comms = job->comm_times_seconds();
  if (comms.empty()) return 0.0;
  // Goodput during the communication phases (skip the first, slow-started).
  std::vector<double> rates;
  for (std::size_t i = 1; i < comms.size(); ++i) {
    rates.push_back(static_cast<double>(bytes) * 8.0 / comms[i] * 1e-9);
  }
  return analysis::mean(rates);
}

double fit_loglog_slope(const std::vector<double>& ps,
                        const std::vector<double>& ys) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const auto n = static_cast<double>(ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const double x = std::log(ps[i]);
    const double y = std::log(ys[i]);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

void loss_response() {
  bench::print_header("(1) throughput vs injected loss probability");

  core::MltcpConfig cfg;
  cfg.tracker.total_bytes = 20'000'000;
  cfg.tracker.comp_time = sim::milliseconds(150);

  const std::vector<double> ps = {0.0001, 0.0003, 0.001, 0.003, 0.01};
  // 2 variants x 5 loss rates = 10 independent lossy runs: one campaign.
  struct LossPoint {
    bool mltcp;
    double p;
  };
  std::vector<LossPoint> points;
  for (const double p : ps) {
    points.push_back(LossPoint{false, p});
    points.push_back(LossPoint{true, p});
  }
  const std::vector<double> goodputs =
      runner::run_campaign<LossPoint, double>(
          points,
          [&cfg](const LossPoint& pt, std::size_t) {
            return lossy_goodput(pt.mltcp
                                     ? core::mltcp_reno_factory(cfg)
                                     : core::reno_factory(),
                                 pt.p);
          },
          bench::campaign_options());
  std::vector<double> reno_tp;
  std::vector<double> mltcp_tp;
  std::printf("loss_p,reno_gbps,mltcp_gbps\n");
  for (std::size_t i = 0; i < ps.size(); ++i) {
    reno_tp.push_back(goodputs[2 * i]);
    mltcp_tp.push_back(goodputs[2 * i + 1]);
    std::printf("%.4f,%.4f,%.4f\n", ps[i], reno_tp.back(), mltcp_tp.back());
  }
  std::printf("log-log slope: reno %.2f (theory -0.5), mltcp %.2f "
              "(paper argues steeper, toward -1)\n",
              fit_loglog_slope(ps, reno_tp), fit_loglog_slope(ps, mltcp_tp));
}

void persistent_share() {
  bench::print_header("(2) persistent MLTCP-Reno vs persistent Reno share");

  sim::Simulator sim;
  net::DumbbellConfig dc;
  dc.hosts_per_side = 2;
  auto d = net::make_dumbbell(sim, dc);

  // Long-lived bulk flows: the MLTCP flow's bytes_ratio saturates at 1, so
  // its additive increase runs at F(1) = 2 vs Reno's 1.
  core::MltcpConfig cfg;
  cfg.tracker.total_bytes = 1'000'000;  // saturates quickly
  cfg.tracker.comp_time = sim::seconds(10);

  tcp::TcpFlow reno_flow(sim, *d.left[0], *d.right[0], 1,
                         std::make_unique<tcp::RenoCC>());
  tcp::TcpFlow mltcp_flow(sim, *d.left[1], *d.right[1], 2,
                          core::make_mltcp_reno(cfg));

  std::int64_t reno_bytes = 0;
  std::int64_t mltcp_bytes = 0;
  std::function<void(sim::SimTime)> refill_reno = [&](sim::SimTime) {
    reno_bytes += 5'000'000;
    reno_flow.send_message(5'000'000, refill_reno);
  };
  std::function<void(sim::SimTime)> refill_mltcp = [&](sim::SimTime) {
    mltcp_bytes += 5'000'000;
    mltcp_flow.send_message(5'000'000, refill_mltcp);
  };
  reno_flow.send_message(5'000'000, refill_reno);
  mltcp_flow.send_message(5'000'000, refill_mltcp);
  sim.run_until(sim::seconds(30));

  const double total =
      static_cast<double>(reno_bytes) + static_cast<double>(mltcp_bytes);
  std::printf("share: mltcp %.2f, reno %.2f (Jain %.3f)\n",
              mltcp_bytes / total, reno_bytes / total,
              analysis::jain_index({static_cast<double>(mltcp_bytes),
                                    static_cast<double>(reno_bytes)}));
  std::printf("MLTCP claims the larger share: %s; Reno starved: %s\n",
              mltcp_bytes > reno_bytes ? "yes" : "NO (unexpected)",
              reno_bytes < 0.1 * total ? "YES (unexpected)" : "no");
}

void coexistence() {
  bench::print_header("(3) MLTCP training job + legacy Reno bulk flow");

  sim::Simulator sim;
  net::DumbbellConfig dc;
  dc.hosts_per_side = 2;
  auto d = net::make_dumbbell(sim, dc);

  // Legacy bulk flow: one long-lived Reno transfer.
  tcp::TcpFlow legacy(sim, *d.left[0], *d.right[0], 1000,
                      std::make_unique<tcp::RenoCC>());
  std::int64_t legacy_done_bytes = 0;
  // Chain 10 MB messages back to back to emulate a persistent flow.
  std::function<void(sim::SimTime)> refill = [&](sim::SimTime) {
    legacy_done_bytes += 10'000'000;
    legacy.send_message(10'000'000, refill);
  };
  legacy.send_message(10'000'000, refill);

  // MLTCP training job on the second host pair.
  const workload::ModelProfile gpt2 = workload::gpt2_profile();
  workload::Cluster cluster(sim);
  workload::JobSpec spec;
  spec.name = "mltcp-job";
  const std::int64_t bytes = workload::comm_bytes(gpt2, 1e9);
  spec.flows = workload::single_flow(d.left[1], d.right[1], bytes);
  spec.compute_time = workload::compute_time(gpt2);
  spec.max_iterations = 20;
  core::MltcpConfig cfg;
  cfg.tracker.total_bytes = bytes;
  cfg.tracker.comp_time = workload::compute_time(gpt2) / 2;
  spec.cc = core::mltcp_reno_factory(cfg);
  workload::Job* job = cluster.add_job(spec);
  cluster.start_all();

  sim.run_until(sim::seconds(40));

  const double horizon = sim::to_seconds(sim.now());
  const double legacy_gbps = legacy_done_bytes * 8.0 / horizon * 1e-9;
  const auto comms = job->comm_times_seconds();
  std::vector<double> rates;
  for (std::size_t i = 1; i < comms.size(); ++i) {
    rates.push_back(bytes * 8.0 / comms[i] * 1e-9);
  }
  const double job_gbps = analysis::mean(rates);
  std::printf("legacy Reno long-term rate: %.3f Gbps (link 1 Gbps)\n",
              legacy_gbps);
  std::printf("MLTCP job rate during its comm phases: %.3f Gbps\n", job_gbps);
  std::printf("legacy starved: %s (paper: MLTCP claims more bandwidth but "
              "never starves legacy flows)\n",
              legacy_gbps < 0.05 ? "YES (unexpected)" : "no");
}

}  // namespace

int main() {
  std::printf("Reproduces the §5 fairness discussion of MLTCP "
              "(HotNets'24).\n");
  loss_response();
  persistent_share();
  coexistence();
  return 0;
}
