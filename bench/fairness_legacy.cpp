// §5 "Fairness between MLTCP and TCP flows":
//  (1) Loss-response exponent: TCP throughput ~ 1/sqrt(p) (Mathis et al.);
//      the paper argues MLTCP-Reno behaves like ~1/p because its additive
//      increase grows with the bytes already sent. We sweep an injected
//      Bernoulli loss probability and fit the log-log slope for both.
//  (2) Coexistence: an MLTCP job sharing the bottleneck with a legacy Reno
//      bulk flow claims more than half the bandwidth but does not starve it.
//  (3) As (2), against the gpt2 training job.
//  (4) RTT-disparity sweep: two persistent flows of the same controller, one
//      with ~8x the propagation delay of the other, share the bottleneck.
//      Loss- and delay-based controllers favor the short path (window growth
//      is per-RTT); Gemini's RTT-compensated additive increase and BBR's
//      BDP-proportional model narrow the gap.
//  (5) Incast coexistence sweep: an 8-worker parameter-server job (each
//      iteration boundary is a synchronized incast burst into one server)
//      shares the bottleneck with a legacy Reno bulk flow, across the full
//      6-CC x {plain, mltcp} matrix. The MLTCP variants must speed up the
//      incast job without starving the legacy flow.

#include <cmath>
#include <cstdio>
#include <vector>

#include "analysis/metrics.hpp"
#include "bench_common.hpp"
#include "net/topology.hpp"
#include "tcp/flow.hpp"
#include "workload/collective.hpp"

namespace {

using namespace mltcp;

/// Mean goodput (Gbps) of one periodic job over `iters` iterations on a
/// link with injected random loss.
double lossy_goodput(const tcp::CcFactory& cc, double loss_p) {
  sim::Simulator sim;
  net::DumbbellConfig dc;
  dc.hosts_per_side = 1;
  // A WAN-ish RTT (~4 ms) puts the flow into the loss-limited regime where
  // the Mathis relation is visible; with a microsecond RTT even tiny windows
  // saturate the link and throughput is insensitive to p.
  dc.bottleneck_delay = sim::milliseconds(2);
  dc.bottleneck_queue = net::make_random_drop_factory(loss_p, 512 * 1500);
  auto d = net::make_dumbbell(sim, dc);

  workload::Cluster cluster(sim);
  workload::JobSpec spec;
  spec.name = "probe";
  const std::int64_t bytes = 20'000'000;  // 20 MB per iteration
  spec.flows = workload::single_flow(d.left[0], d.right[0], bytes);
  spec.compute_time = sim::milliseconds(300);
  spec.max_iterations = 12;
  spec.cc = cc;
  workload::Job* job = cluster.add_job(spec);
  cluster.start_all();
  sim.run_until(sim::seconds(240));

  const auto comms = job->comm_times_seconds();
  if (comms.empty()) return 0.0;
  // Goodput during the communication phases (skip the first, slow-started).
  std::vector<double> rates;
  for (std::size_t i = 1; i < comms.size(); ++i) {
    rates.push_back(static_cast<double>(bytes) * 8.0 / comms[i] * 1e-9);
  }
  return analysis::mean(rates);
}

double fit_loglog_slope(const std::vector<double>& ps,
                        const std::vector<double>& ys) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const auto n = static_cast<double>(ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const double x = std::log(ps[i]);
    const double y = std::log(ys[i]);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

void loss_response() {
  bench::print_header("(1) throughput vs injected loss probability");

  core::MltcpConfig cfg;
  cfg.tracker.total_bytes = 20'000'000;
  cfg.tracker.comp_time = sim::milliseconds(150);

  const std::vector<double> ps = {0.0001, 0.0003, 0.001, 0.003, 0.01};
  // 2 variants x 5 loss rates = 10 independent lossy runs: one campaign.
  struct LossPoint {
    bool mltcp;
    double p;
  };
  std::vector<LossPoint> points;
  for (const double p : ps) {
    points.push_back(LossPoint{false, p});
    points.push_back(LossPoint{true, p});
  }
  const std::vector<double> goodputs =
      runner::run_campaign<LossPoint, double>(
          points,
          [&cfg](const LossPoint& pt, std::size_t) {
            return lossy_goodput(pt.mltcp
                                     ? core::mltcp_reno_factory(cfg)
                                     : core::reno_factory(),
                                 pt.p);
          },
          bench::campaign_options());
  std::vector<double> reno_tp;
  std::vector<double> mltcp_tp;
  std::printf("loss_p,reno_gbps,mltcp_gbps\n");
  for (std::size_t i = 0; i < ps.size(); ++i) {
    reno_tp.push_back(goodputs[2 * i]);
    mltcp_tp.push_back(goodputs[2 * i + 1]);
    std::printf("%.4f,%.4f,%.4f\n", ps[i], reno_tp.back(), mltcp_tp.back());
  }
  std::printf("log-log slope: reno %.2f (theory -0.5), mltcp %.2f "
              "(paper argues steeper, toward -1)\n",
              fit_loglog_slope(ps, reno_tp), fit_loglog_slope(ps, mltcp_tp));
}

void persistent_share() {
  bench::print_header("(2) persistent MLTCP-Reno vs persistent Reno share");

  sim::Simulator sim;
  net::DumbbellConfig dc;
  dc.hosts_per_side = 2;
  auto d = net::make_dumbbell(sim, dc);

  // Long-lived bulk flows: the MLTCP flow's bytes_ratio saturates at 1, so
  // its additive increase runs at F(1) = 2 vs Reno's 1.
  core::MltcpConfig cfg;
  cfg.tracker.total_bytes = 1'000'000;  // saturates quickly
  cfg.tracker.comp_time = sim::seconds(10);

  tcp::TcpFlow reno_flow(sim, *d.left[0], *d.right[0], 1,
                         std::make_unique<tcp::RenoCC>());
  tcp::TcpFlow mltcp_flow(sim, *d.left[1], *d.right[1], 2,
                          core::make_mltcp_reno(cfg));

  std::int64_t reno_bytes = 0;
  std::int64_t mltcp_bytes = 0;
  std::function<void(sim::SimTime)> refill_reno = [&](sim::SimTime) {
    reno_bytes += 5'000'000;
    reno_flow.send_message(5'000'000, refill_reno);
  };
  std::function<void(sim::SimTime)> refill_mltcp = [&](sim::SimTime) {
    mltcp_bytes += 5'000'000;
    mltcp_flow.send_message(5'000'000, refill_mltcp);
  };
  reno_flow.send_message(5'000'000, refill_reno);
  mltcp_flow.send_message(5'000'000, refill_mltcp);
  sim.run_until(sim::seconds(30));

  const double total =
      static_cast<double>(reno_bytes) + static_cast<double>(mltcp_bytes);
  std::printf("share: mltcp %.2f, reno %.2f (Jain %.3f)\n",
              mltcp_bytes / total, reno_bytes / total,
              analysis::jain_index({static_cast<double>(mltcp_bytes),
                                    static_cast<double>(reno_bytes)}));
  std::printf("MLTCP claims the larger share: %s; Reno starved: %s\n",
              mltcp_bytes > reno_bytes ? "yes" : "NO (unexpected)",
              reno_bytes < 0.1 * total ? "YES (unexpected)" : "no");
}

void coexistence() {
  bench::print_header("(3) MLTCP training job + legacy Reno bulk flow");

  sim::Simulator sim;
  net::DumbbellConfig dc;
  dc.hosts_per_side = 2;
  auto d = net::make_dumbbell(sim, dc);

  // Legacy bulk flow: one long-lived Reno transfer.
  tcp::TcpFlow legacy(sim, *d.left[0], *d.right[0], 1000,
                      std::make_unique<tcp::RenoCC>());
  std::int64_t legacy_done_bytes = 0;
  // Chain 10 MB messages back to back to emulate a persistent flow.
  std::function<void(sim::SimTime)> refill = [&](sim::SimTime) {
    legacy_done_bytes += 10'000'000;
    legacy.send_message(10'000'000, refill);
  };
  legacy.send_message(10'000'000, refill);

  // MLTCP training job on the second host pair.
  const workload::ModelProfile gpt2 = workload::gpt2_profile();
  workload::Cluster cluster(sim);
  workload::JobSpec spec;
  spec.name = "mltcp-job";
  const std::int64_t bytes = workload::comm_bytes(gpt2, 1e9);
  spec.flows = workload::single_flow(d.left[1], d.right[1], bytes);
  spec.compute_time = workload::compute_time(gpt2);
  spec.max_iterations = 20;
  core::MltcpConfig cfg;
  cfg.tracker.total_bytes = bytes;
  cfg.tracker.comp_time = workload::compute_time(gpt2) / 2;
  spec.cc = core::mltcp_reno_factory(cfg);
  workload::Job* job = cluster.add_job(spec);
  cluster.start_all();

  sim.run_until(sim::seconds(40));

  const double horizon = sim::to_seconds(sim.now());
  const double legacy_gbps = legacy_done_bytes * 8.0 / horizon * 1e-9;
  const auto comms = job->comm_times_seconds();
  std::vector<double> rates;
  for (std::size_t i = 1; i < comms.size(); ++i) {
    rates.push_back(bytes * 8.0 / comms[i] * 1e-9);
  }
  const double job_gbps = analysis::mean(rates);
  std::printf("legacy Reno long-term rate: %.3f Gbps (link 1 Gbps)\n",
              legacy_gbps);
  std::printf("MLTCP job rate during its comm phases: %.3f Gbps\n", job_gbps);
  std::printf("legacy starved: %s (paper: MLTCP claims more bandwidth but "
              "never starves legacy flows)\n",
              legacy_gbps < 0.05 ? "YES (unexpected)" : "no");
}

/// One CC flavor of the family matrix. `ecn_bottleneck` switches the
/// bottleneck queue to an ECN-marking one for the controllers that need the
/// signal (DCTCP, Gemini's intra-DC loop).
struct CcVariant {
  std::string name;
  tcp::CcFactory cc;
  bool ecn_bottleneck = false;
};

net::QueueFactory bottleneck_queue_for(const CcVariant& v) {
  // ~2 ms of buffer at 1 Gbps (the dumbbell default) / DCTCP-style marking.
  return v.ecn_bottleneck ? net::make_ecn_factory(256 * 1500, 20 * 1500)
                          : net::make_droptail_factory(250'000);
}

std::vector<CcVariant> plain_family() {
  std::vector<CcVariant> v;
  v.push_back({"reno", core::reno_factory(), false});
  v.push_back({"cubic", core::cubic_factory(), false});
  v.push_back({"dctcp", core::dctcp_factory(), true});
  v.push_back({"swift", core::swift_factory(), false});
  v.push_back({"bbr", core::bbr_factory(), false});
  v.push_back({"gemini", core::gemini_factory(), true});
  return v;
}

struct DisparityOutcome {
  double near_gbps = 0.0;
  double far_gbps = 0.0;
  double jain = 0.0;
};

/// Two persistent same-controller flows into one 1 Gb/s bottleneck, one on
/// a ~60 us path and one on a ~2 ms path (access-link delay disparity the
/// stock dumbbell cannot express, so the topology is hand-built).
DisparityOutcome rtt_disparity_run(const CcVariant& v) {
  sim::Simulator sim;
  net::Topology topo(sim);
  net::Switch* swL = topo.add_switch("swL");
  net::Switch* swR = topo.add_switch("swR");
  topo.connect(*swL, *swR, 1e9, sim::microseconds(20),
               bottleneck_queue_for(v));
  const net::QueueFactory host_q = net::make_droptail_factory(4 * 1024 * 1024);
  net::Host* near_src = topo.add_host("near_src");
  net::Host* far_src = topo.add_host("far_src");
  net::Host* near_dst = topo.add_host("near_dst");
  net::Host* far_dst = topo.add_host("far_dst");
  topo.connect(*near_src, *swL, 4e9, sim::microseconds(5), host_q);
  topo.connect(*far_src, *swL, 4e9, sim::milliseconds(1), host_q);
  topo.connect(*near_dst, *swR, 4e9, sim::microseconds(5), host_q);
  topo.connect(*far_dst, *swR, 4e9, sim::microseconds(5), host_q);
  topo.build_routes();

  tcp::TcpFlow near_flow(sim, *near_src, *near_dst, 1, v.cc());
  tcp::TcpFlow far_flow(sim, *far_src, *far_dst, 2, v.cc());
  std::int64_t near_bytes = 0;
  std::int64_t far_bytes = 0;
  std::function<void(sim::SimTime)> refill_near = [&](sim::SimTime) {
    near_bytes += 5'000'000;
    near_flow.send_message(5'000'000, refill_near);
  };
  std::function<void(sim::SimTime)> refill_far = [&](sim::SimTime) {
    far_bytes += 5'000'000;
    far_flow.send_message(5'000'000, refill_far);
  };
  near_flow.send_message(5'000'000, refill_near);
  far_flow.send_message(5'000'000, refill_far);
  const double horizon = 30.0;
  sim.run_until(sim::from_seconds(horizon));

  DisparityOutcome out;
  out.near_gbps = static_cast<double>(near_bytes) * 8.0 / horizon * 1e-9;
  out.far_gbps = static_cast<double>(far_bytes) * 8.0 / horizon * 1e-9;
  out.jain = analysis::jain_index({static_cast<double>(near_bytes),
                                   static_cast<double>(far_bytes)});
  return out;
}

void rtt_disparity() {
  bench::print_header("(4) RTT-disparity fairness across the CC family");
  const std::vector<CcVariant> family = plain_family();
  const std::vector<DisparityOutcome> results =
      runner::run_campaign<CcVariant, DisparityOutcome>(
          family,
          [](const CcVariant& v, std::size_t) { return rtt_disparity_run(v); },
          bench::campaign_options());
  std::printf("%-8s %10s %10s %10s %8s\n", "cc", "near_gbps", "far_gbps",
              "far/near", "jain");
  for (std::size_t i = 0; i < family.size(); ++i) {
    const DisparityOutcome& o = results[i];
    std::printf("%-8s %10.3f %10.3f %10.3f %8.3f\n", family[i].name.c_str(),
                o.near_gbps, o.far_gbps,
                o.near_gbps > 0 ? o.far_gbps / o.near_gbps : 0.0, o.jain);
  }
  std::printf("expected shape: per-RTT window growth starves the far flow "
              "(reno/cubic/dctcp/swift);\ngemini's srtt/rtt_ref-scaled "
              "increase narrows the gap (best Jain of the family);\nbbr "
              "OVERSHOOTS and inverts it — BBRv1's documented long-RTT "
              "favoritism (the far\nflow's larger min_rtt buys a larger "
              "BDP and inflight cap at the shared queue).\n");
}

struct IncastOutcome {
  double tail_iter_s = 0.0;
  double legacy_gbps = 0.0;
  int iterations = 0;
};

/// An 8-worker parameter-server job (synchronized incast into one server at
/// every iteration boundary) plus a persistent legacy Reno bulk flow.
IncastOutcome incast_run(const CcVariant& v) {
  sim::Simulator sim;
  net::DumbbellConfig dc;
  dc.hosts_per_side = 9;
  dc.bottleneck_queue = bottleneck_queue_for(v);
  auto d = net::make_dumbbell(sim, dc);

  tcp::TcpFlow legacy(sim, *d.left[8], *d.right[8], 1000,
                      std::make_unique<tcp::RenoCC>());
  std::int64_t legacy_done_bytes = 0;
  std::function<void(sim::SimTime)> refill = [&](sim::SimTime) {
    legacy_done_bytes += 10'000'000;
    legacy.send_message(10'000'000, refill);
  };
  legacy.send_message(10'000'000, refill);

  workload::Cluster cluster(sim);
  workload::JobSpec spec;
  spec.name = "ps-incast";
  const std::int64_t bytes_per_worker = 2'000'000;
  std::vector<net::Host*> workers(d.left.begin(), d.left.begin() + 8);
  spec.flows = workload::parameter_server(workers, d.right[0],
                                          bytes_per_worker);
  spec.compute_time = sim::milliseconds(40);
  spec.max_iterations = 60;
  spec.cc = v.cc;
  workload::Job* job = cluster.add_job(spec);
  cluster.start_all();

  const double horizon = 30.0;
  sim.run_until(sim::from_seconds(horizon));

  IncastOutcome out;
  const auto times = job->iteration_times_seconds();
  out.iterations = static_cast<int>(times.size());
  out.tail_iter_s = analysis::tail_mean(times, 10);
  out.legacy_gbps =
      static_cast<double>(legacy_done_bytes) * 8.0 / horizon * 1e-9;
  return out;
}

void incast_coexistence() {
  bench::print_header(
      "(5) incast coexistence: 8:1 parameter-server job vs legacy Reno");

  std::vector<CcVariant> variants;
  core::MltcpConfig cfg;
  cfg.tracker.total_bytes = 2'000'000;
  cfg.tracker.comp_time = sim::milliseconds(20);
  variants.push_back({"reno", core::reno_factory(), false});
  variants.push_back({"mltcp-reno", core::mltcp_reno_factory(cfg), false});
  variants.push_back({"cubic", core::cubic_factory(), false});
  variants.push_back({"mltcp-cubic", core::mltcp_cubic_factory(cfg), false});
  variants.push_back({"dctcp", core::dctcp_factory(), true});
  variants.push_back({"mltcp-dctcp", core::mltcp_dctcp_factory(cfg), true});
  variants.push_back({"swift", core::swift_factory(), false});
  variants.push_back({"mltcp-swift", core::mltcp_swift_factory(cfg), false});
  variants.push_back({"bbr", core::bbr_factory(), false});
  variants.push_back({"mltcp-bbr", core::mltcp_bbr_factory(cfg), false});
  variants.push_back({"gemini", core::gemini_factory(), true});
  variants.push_back({"mltcp-gemini", core::mltcp_gemini_factory(cfg), true});

  const std::vector<IncastOutcome> results =
      runner::run_campaign<CcVariant, IncastOutcome>(
          variants,
          [](const CcVariant& v, std::size_t) { return incast_run(v); },
          bench::campaign_options());
  std::printf("%-14s %12s %8s %12s %s\n", "cc", "tail_iter_s", "iters",
              "legacy_gbps", "legacy_starved");
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const IncastOutcome& o = results[i];
    std::printf("%-14s %12.3f %8d %12.3f %s\n", variants[i].name.c_str(),
                o.tail_iter_s, o.iterations, o.legacy_gbps,
                o.legacy_gbps < 0.02 ? "YES (unexpected)" : "no");
  }
  std::printf("expected shape: the legacy flow keeps a healthy share under "
              "all twelve\nvariants — incast is where starvation would show "
              "first. The MLTCP gain cycle\nneither helps nor hurts the "
              "incast tail materially (a few percent either way:\nthe 8 "
              "synchronized workers are one job, so there is no cross-job "
              "asymmetry for\nF to exploit).\n");
}

}  // namespace

int main() {
  std::printf("Reproduces the §5 fairness discussion of MLTCP "
              "(HotNets'24).\n");
  loss_response();
  persistent_share();
  coexistence();
  rtt_disparity();
  incast_coexistence();
  return 0;
}
