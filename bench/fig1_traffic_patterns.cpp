// Figure 1: traffic pattern (bandwidth vs. time) of jobs J1 (GPT-3-like) and
// J2..J4 (GPT-2-like) when each runs in isolation on the dumbbell.
//
// The paper measured these on an 8xA100 testbed at 50 Gbps; here each job
// runs alone on the scaled 1 Gbps bottleneck and we bin the bottleneck
// transmissions into 50 ms buckets. Expect rectangular on/off periodic
// demand: ~0.3 s of full-rate communication every 1.2 s for GPT-3 and
// ~0.27 s every 1.8 s for GPT-2.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace mltcp;

void run_isolated(const workload::ModelProfile& profile,
                  const std::string& label) {
  auto exp = bench::make_experiment();
  bench::ProfileJobOptions opts;
  opts.max_iterations = 4;
  workload::Job* job = bench::add_profile_job(*exp, profile, 0,
                                              core::reno_factory(), opts);
  auto* binner =
      bench::bottleneck_binner_for_job(*exp, 0, sim::milliseconds(50));

  exp->cluster->start_all();
  exp->sim.run_until(sim::seconds(8));

  bench::print_header("Figure 1: " + label + " (" + profile.model_name +
                      ") traffic pattern");
  std::printf("time_s,rate_gbps\n");
  for (std::size_t i = 0; i < binner->bin_count(); ++i) {
    std::printf("%.3f,%.4f\n", sim::to_seconds(binner->bin_time(i)),
                binner->rate_gbps(i));
  }
  const auto iters = job->iteration_times_seconds();
  bench::print_series("iteration_times_s", iters);
  const auto comms = job->comm_times_seconds();
  bench::print_series("comm_times_s", comms);
}

}  // namespace

int main() {
  std::printf("Reproduces Figure 1 of MLTCP (HotNets'24): periodic on/off\n"
              "communication patterns of DNN training jobs in isolation.\n");
  run_isolated(workload::gpt3_profile(), "J1");
  run_isolated(workload::gpt2_profile(), "J2");
  run_isolated(workload::gpt2_profile(), "J3");
  run_isolated(workload::gpt2_profile(), "J4");
  return 0;
}
