// Figure 2: four DNN jobs (J1 = GPT-3-like, J2..J4 = GPT-2-like) on one
// bottleneck under three schedulers:
//  (a) the centralized optimal (Cassini-like offset optimizer + plain Reno),
//  (b) SRPT (pFabric: priority-dropping switch + line-rate senders),
//  (c) MLTCP-Reno starting from the worst case (all comms aligned).
//
// Paper's shape: optimal gives J1 its ideal 1.2 s and J2..J4 their 1.8 s;
// pFabric keeps J2..J4 near ideal but slows J1 ~1.5x by head-of-line
// blocking; MLTCP converges within ~20 iterations to within ~5% of optimal
// and stays there (§2 "Approximation error").

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/metrics.hpp"
#include "bench_common.hpp"
#include "sched/centralized.hpp"
#include "sched/pfabric.hpp"

namespace {

using namespace mltcp;

constexpr int kIterations = 100;

/// Guard band added to each job's scheduled communication slot: absorbs the
/// ACK-tail latency and queueing jitter of a real transfer so a job that
/// runs a few ms long can fall back to its slot instead of drifting.
constexpr sim::SimTime kSlotGuard = sim::milliseconds(10);

/// Wire-level duration of one communication phase: payload bytes inflated by
/// the MTU/payload header overhead, plus the scheduling guard band.
sim::SimTime wire_comm_time(const workload::ModelProfile& p, double rate_bps) {
  const std::int64_t payload = workload::comm_bytes(p, rate_bps);
  const double wire_bytes = static_cast<double>(payload) * 1500.0 / 1460.0;
  return sim::from_seconds(wire_bytes * 8.0 / rate_bps) + kSlotGuard;
}

struct JobSetup {
  workload::ModelProfile profile;
  int host_index;
};

std::vector<JobSetup> setups() {
  return {{workload::gpt3_profile(), 0},
          {workload::gpt2_profile(), 1},
          {workload::gpt2_profile(), 2},
          {workload::gpt2_profile(), 3}};
}

/// Period-harmonization pads (§4 scopes MLTCP to scenarios where an
/// interleaved schedule exists; with header-inflated wire times the nominal
/// 1.2s:1.8s periods are no longer exactly 2:3, so each job's compute time
/// is padded by a few ms to restore commensurate periods — the alignment a
/// Cassini-style controller performs, applied uniformly to every scheduler).
std::vector<sim::SimTime> compute_pads(double rate_bps) {
  std::vector<sched::JobTiming> timings;
  for (const auto& s : setups()) {
    timings.push_back(sched::JobTiming{s.profile.ideal_iteration_time,
                                       wire_comm_time(s.profile, rate_bps),
                                       workload::compute_time(s.profile)});
  }
  return sched::harmonize_compute_pads(timings);
}

struct RunReport {
  std::vector<double> mean_iteration;  // per job, converged (last 10)
  std::vector<double> overall_mean;    // per job, all iterations
  int convergence_iteration = -1;
};

RunReport report_jobs(const std::vector<workload::Job*>& jobs,
                      const char* label) {
  RunReport rep;
  bench::print_header(std::string("Figure 2: ") + label);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const auto times = jobs[j]->iteration_times_seconds();
    rep.mean_iteration.push_back(analysis::tail_mean(times, 10));
    rep.overall_mean.push_back(analysis::mean(times));
    std::printf(
        "%-8s ideal %.3fs | mean %.3fs | converged(last-10) %.3fs\n",
        jobs[j]->name().c_str(),
        sim::to_seconds(j == 0 ? workload::gpt3_profile().ideal_iteration_time
                               : workload::gpt2_profile().ideal_iteration_time),
        rep.overall_mean.back(), rep.mean_iteration.back());
  }

  // Convergence iteration: first index after which every job stays within 5%
  // of its converged (last-10) level.
  int conv = 0;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const auto times = jobs[j]->iteration_times_seconds();
    const double target = rep.mean_iteration[j] * 1.05;
    int last_bad = -1;
    for (std::size_t i = 0; i + 10 < times.size(); ++i) {
      if (times[i] > target) last_bad = static_cast<int>(i);
    }
    conv = std::max(conv, last_bad + 1);
  }
  rep.convergence_iteration = conv;
  std::printf("converged by iteration: %d\n", conv);
  return rep;
}

RunReport run_centralized() {
  auto exp = bench::make_experiment();
  const double rate = exp->scenario.bottleneck_rate_bps;

  // The central controller sees each job's harmonized period and wire comm
  // duration and solves for interleaving offsets.
  const auto pads = compute_pads(rate);
  std::vector<sched::PeriodicDemand> demands;
  const auto cfg0 = setups();
  for (std::size_t i = 0; i < cfg0.size(); ++i) {
    const auto& s = cfg0[i];
    const sim::SimTime wire = wire_comm_time(s.profile, rate);
    demands.push_back(sched::PeriodicDemand{
        s.profile.model_name,
        wire + workload::compute_time(s.profile) + pads[i], wire});
  }
  const sched::Schedule schedule = sched::optimize_interleaving(demands);
  std::printf("\ncentralized optimizer: hyperperiod %.1fs, excess %.6fs\n",
              sim::to_seconds(schedule.hyperperiod),
              sim::to_seconds(schedule.excess));

  std::vector<workload::Job*> jobs;
  const auto cfg = setups();
  for (std::size_t i = 0; i < cfg.size(); ++i) {
    bench::ProfileJobOptions opts;
    opts.max_iterations = kIterations;
    opts.start_time = schedule.offsets[i];
    opts.extra_compute = pads[i];
    opts.gate_period = demands[i].period;  // Cassini-style slot enforcement
    jobs.push_back(bench::add_profile_job(*exp, cfg[i].profile,
                                          cfg[i].host_index,
                                          core::reno_factory(), opts));
  }
  exp->cluster->start_all();
  exp->sim.run_until(sim::seconds(260));
  return report_jobs(jobs, "(a) centralized optimal (Cassini-like)");
}

RunReport run_pfabric() {
  bench::ScenarioConfig scenario;
  // pFabric: shallow priority-dropping buffers at the bottleneck.
  scenario.bottleneck_queue = net::make_pfabric_factory(36 * 1500);
  auto exp = bench::make_experiment(scenario);

  const auto pads = compute_pads(scenario.bottleneck_rate_bps);
  std::vector<workload::Job*> jobs;
  const auto cfg = setups();
  for (std::size_t i = 0; i < cfg.size(); ++i) {
    bench::ProfileJobOptions opts;
    opts.max_iterations = kIterations;
    opts.pfabric_priority = true;
    opts.extra_compute = pads[i];
    jobs.push_back(bench::add_profile_job(*exp, cfg[i].profile,
                                          cfg[i].host_index,
                                          sched::pfabric_factory(), opts));
  }
  exp->cluster->start_all();
  exp->sim.run_until(sim::seconds(260));
  return report_jobs(jobs, "(b) SRPT (pFabric)");
}

RunReport run_mltcp() {
  auto exp = bench::make_experiment();
  const auto pads = compute_pads(exp->scenario.bottleneck_rate_bps);
  std::vector<workload::Job*> jobs;
  const auto setup = setups();
  for (std::size_t i = 0; i < setup.size(); ++i) {
    const auto& s = setup[i];
    bench::ProfileJobOptions opts;
    opts.max_iterations = kIterations;
    opts.extra_compute = pads[i];
    const core::MltcpConfig cfg = bench::mltcp_config_for(
        s.profile, exp->scenario.bottleneck_rate_bps, opts.num_flows);
    jobs.push_back(bench::add_profile_job(*exp, s.profile, s.host_index,
                                          core::mltcp_reno_factory(cfg),
                                          opts));
  }
  exp->cluster->start_all();
  exp->sim.run_until(sim::seconds(260));
  return report_jobs(jobs, "(c) MLTCP-Reno (all jobs start together)");
}

}  // namespace

int main() {
  std::printf("Reproduces Figure 2 of MLTCP (HotNets'24): scheduler "
              "comparison for 1 GPT-3-like + 3 GPT-2-like jobs.\n");

  const RunReport optimal = run_centralized();
  const RunReport pfabric = run_pfabric();
  const RunReport mltcp = run_mltcp();

  bench::print_header("Summary (converged iteration times, seconds)");
  std::printf("%-10s %10s %10s %10s %14s\n", "job", "optimal", "pfabric",
              "mltcp", "mltcp/optimal");
  const char* names[] = {"J1(gpt3)", "J2(gpt2)", "J3(gpt2)", "J4(gpt2)"};
  for (int j = 0; j < 4; ++j) {
    std::printf("%-10s %10.3f %10.3f %10.3f %13.1f%%\n", names[j],
                optimal.mean_iteration[j], pfabric.mean_iteration[j],
                mltcp.mean_iteration[j],
                100.0 * (mltcp.mean_iteration[j] / optimal.mean_iteration[j] -
                         1.0));
  }
  std::printf("\nJ1 slowdown under pFabric vs optimal: %.2fx "
              "(paper: ~1.5x)\n",
              pfabric.mean_iteration[0] / optimal.mean_iteration[0]);
  std::printf("MLTCP converged by iteration %d (paper: ~20)\n",
              mltcp.convergence_iteration);
  return 0;
}
