// Figure 4: six identical GPT-2 jobs share the bottleneck.
//  (a) TCP Reno: persistent congestion, every job's iterations are slow.
//  (b) MLTCP-Reno: the jobs converge to a near-optimal interleaved state.
//  (c) CDF of iteration times; the paper reports a ~1.59x tail (p99)
//      iteration-time speedup for MLTCP over Reno.
//
// Six jobs x 0.15 communication fraction = 0.90 link utilization, so random
// drift cannot de-synchronize the jobs; only the aggressiveness gain can.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/metrics.hpp"
#include "bench_common.hpp"

namespace {

using namespace mltcp;

constexpr int kJobs = 6;
constexpr int kIterations = 130;
// Compute-time jitter, as on the paper's real testbed (§4 models it as
// zero-mean Gaussian noise). Without a restoring force (plain Reno) the job
// offsets random-walk in and out of contention; MLTCP's gradient pulls them
// back to the interleaved state.
constexpr double kNoiseStddevSeconds = 0.002;

struct RunResult {
  std::vector<std::vector<double>> iteration_times;  // per job
  std::vector<double> all_times;                     // pooled
  std::vector<double> steady_times;                  // last 30 iters pooled
  double overlap_tail_seconds = 0.0;  // comm overlap in the last 20 s
  runner::Report report;              // the run's section of the output
};

/// One campaign variant. Each run owns its whole world (Simulator, dumbbell,
/// cluster), so the two variants execute on different threads; the report is
/// accumulated per run and printed in spec order afterwards.
struct Variant {
  const char* label;
  tcp::CcFactory cc;
  bool print_bandwidth;
};

RunResult run(const Variant& v) {
  auto exp = bench::make_experiment();
  const workload::ModelProfile gpt2 = workload::gpt2_profile();

  std::vector<workload::Job*> jobs;
  for (int i = 0; i < kJobs; ++i) {
    bench::ProfileJobOptions opts;
    opts.max_iterations = kIterations;
    opts.noise_stddev_seconds = kNoiseStddevSeconds;
    jobs.push_back(bench::add_profile_job(*exp, gpt2, i, v.cc, opts));
  }
  std::vector<sim::RateBinner*> binners;
  for (int i = 0; i < kJobs; ++i) {
    binners.push_back(bench::bottleneck_binner_for_job(
        *exp, static_cast<std::size_t>(i), sim::milliseconds(100)));
  }

  exp->cluster->start_all();
  exp->sim.run_until(sim::seconds(450));

  RunResult res;
  for (workload::Job* job : jobs) {
    res.iteration_times.push_back(job->iteration_times_seconds());
    const auto& times = res.iteration_times.back();
    for (std::size_t i = 0; i < times.size(); ++i) {
      res.all_times.push_back(times[i]);
      if (i + 30 >= times.size()) res.steady_times.push_back(times[i]);
    }
  }
  // Window the overlap metric to the last 20 s in which jobs were active.
  sim::SimTime end = 0;
  for (const workload::Job* job : jobs) {
    if (!job->iterations().empty()) {
      end = std::max(end, job->iterations().back().comm_end);
    }
  }
  std::vector<const workload::Job*> cjobs(jobs.begin(), jobs.end());
  res.overlap_tail_seconds =
      analysis::comm_overlap_seconds(cjobs, end - sim::seconds(20), end);

  res.report.addf("\n==== %s ====\n",
                  (std::string("Figure 4: six GPT-2 jobs, ") + v.label)
                      .c_str());
  for (int i = 0; i < kJobs; ++i) {
    const auto& times = res.iteration_times[i];
    res.report.addf("job %d: iters %zu, mean %.3fs, last-10 mean %.3fs\n", i,
                    times.size(), analysis::mean(times),
                    analysis::tail_mean(times, 10));
  }
  res.report.addf(
      "comm overlap in final 20s: %.3fs (0 = fully interleaved)\n",
      res.overlap_tail_seconds);

  if (v.print_bandwidth) {
    res.report.addf("bandwidth (Gbps per 100ms bin, first 12s):\ntime_s");
    for (int i = 0; i < kJobs; ++i) res.report.addf(",job%d", i);
    res.report.addf("\n");
    for (std::size_t b = 0; b < 120 && b < binners[0]->bin_count(); ++b) {
      res.report.addf("%.1f", sim::to_seconds(binners[0]->bin_time(b)));
      for (int i = 0; i < kJobs; ++i) {
        res.report.addf(",%.3f", b < binners[i]->bin_count()
                                     ? binners[i]->rate_gbps(b)
                                     : 0.0);
      }
      res.report.addf("\n");
    }
  }
  return res;
}

void print_cdf(const char* label, const std::vector<double>& xs) {
  const auto cdf = analysis::make_cdf(xs);
  std::printf("%s CDF (value_s,cum):", label);
  const std::size_t step = std::max<std::size_t>(cdf.size() / 20, 1);
  for (std::size_t i = 0; i < cdf.size(); i += step) {
    std::printf(" %.3f,%.2f", cdf[i].value, cdf[i].cumulative_probability);
  }
  std::printf(" %.3f,1.00\n", cdf.back().value);
}

}  // namespace

int main() {
  std::printf("Reproduces Figure 4 of MLTCP (HotNets'24).\n");

  const workload::ModelProfile gpt2 = workload::gpt2_profile();
  const core::MltcpConfig cfg = bench::mltcp_config_for(gpt2, 1e9);
  // The two 450-simulated-second variants are independent worlds; shard them
  // across threads and print the accumulated reports in spec order.
  const std::vector<Variant> variants = {
      {"TCP Reno", core::reno_factory(), true},
      {"MLTCP-Reno", core::mltcp_reno_factory(cfg), true},
  };
  const std::vector<RunResult> results =
      runner::run_campaign<Variant, RunResult>(
          variants, [](const Variant& v, std::size_t) { return run(v); },
          bench::campaign_options());
  for (const RunResult& r : results) std::fputs(r.report.text().c_str(),
                                                stdout);
  const RunResult& reno = results[0];
  const RunResult& mltcp = results[1];

  bench::print_header("Figure 4c: iteration-time CDF");
  print_cdf("reno", reno.all_times);
  print_cdf("mltcp", mltcp.all_times);
  {
    auto csv = bench::open_csv("fig4_cdf", {"variant", "value_s", "cum"});
    for (const auto& [label, xs] :
         {std::pair{"reno", &reno.all_times},
          std::pair{"mltcp", &mltcp.all_times}}) {
      for (const auto& pt : analysis::make_cdf(*xs)) {
        csv->row(std::vector<std::string>{
            label, std::to_string(pt.value),
            std::to_string(pt.cumulative_probability)});
      }
    }
  }

  const double reno_p99 = analysis::percentile(reno.all_times, 99);
  const double mltcp_p99 = analysis::percentile(mltcp.all_times, 99);
  const double reno_p95 = analysis::percentile(reno.all_times, 95);
  const double mltcp_p95 = analysis::percentile(mltcp.all_times, 95);
  std::printf("\nlifetime CDF (includes the shared cold-start transient of "
              "this %d-iteration run):\n", kIterations);
  std::printf("  p95: reno %.3fs, mltcp %.3fs -> speedup %.2fx\n", reno_p95,
              mltcp_p95, reno_p95 / mltcp_p95);
  std::printf("  p99: reno %.3fs, mltcp %.3fs -> speedup %.2fx\n", reno_p99,
              mltcp_p99, reno_p99 / mltcp_p99);

  // The paper's jobs train for thousands of iterations, so its lifetime CDF
  // is dominated by the steady state; compare that regime directly.
  const double s_reno_p95 = analysis::percentile(reno.steady_times, 95);
  const double s_mltcp_p95 = analysis::percentile(mltcp.steady_times, 95);
  const double s_reno_p99 = analysis::percentile(reno.steady_times, 99);
  const double s_mltcp_p99 = analysis::percentile(mltcp.steady_times, 99);
  std::printf("steady state (last 30 iterations of every job):\n");
  std::printf("  p95: reno %.3fs, mltcp %.3fs -> speedup %.2fx\n",
              s_reno_p95, s_mltcp_p95, s_reno_p95 / s_mltcp_p95);
  std::printf("  p99: reno %.3fs, mltcp %.3fs -> speedup %.2fx "
              "(paper: ~1.59x tail speedup)\n",
              s_reno_p99, s_mltcp_p99, s_reno_p99 / s_mltcp_p99);
  return 0;
}
