// Ablations of MLTCP's design choices (DESIGN.md §4):
//  (A) iteration-boundary detection: oracle-configured TOTAL_BYTES/COMP_TIME
//      vs Algorithm 1's auto-learning from ACK gaps;
//  (B) Slope/Intercept sensitivity of the linear aggressiveness function;
//  (C) delayed ACKs (num_acks batching) vs per-packet ACKs;
//  (D) slow-start-after-idle on/off (RFC 2861) for the plain-Reno baseline.

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/fluid_model.hpp"
#include "analysis/metrics.hpp"
#include "bench_common.hpp"

namespace {

using namespace mltcp;

constexpr int kJobs = 3;
constexpr int kIterations = 40;

struct Outcome {
  double tail = 0.0;       // converged iteration time (s)
  int convergence = -1;    // first iteration within 5% of converged level
};

/// One packet-level ablation run: which CC factory, ACK batching, and idle
/// behavior. All six packet runs across sections (A)/(C)/(D) are collected
/// into a single campaign and sharded across threads.
struct PacketSpec {
  tcp::CcFactory cc;
  int ack_every = 1;
  bool slow_start_after_idle = true;
};

Outcome run_packet(const tcp::CcFactory& cc, int ack_every,
                   bool slow_start_after_idle) {
  auto exp = bench::make_experiment();
  const workload::ModelProfile gpt2 = workload::gpt2_profile();

  std::vector<workload::Job*> jobs;
  for (int i = 0; i < kJobs; ++i) {
    workload::JobSpec spec;
    spec.name = "j" + std::to_string(i);
    const std::int64_t total = workload::comm_bytes(gpt2, 1e9);
    for (int f = 0; f < 4; ++f) {
      spec.flows.push_back(workload::FlowSpec{exp->dumbbell.left[i],
                                              exp->dumbbell.right[i],
                                              total / 4});
    }
    spec.compute_time = workload::compute_time(gpt2);
    spec.max_iterations = kIterations;
    spec.cc = cc;
    spec.receiver.ack_every = ack_every;
    spec.sender.slow_start_after_idle = slow_start_after_idle;
    jobs.push_back(exp->cluster->add_job(spec));
  }
  exp->cluster->start_all();
  exp->sim.run_until(sim::seconds(150));

  Outcome out;
  std::vector<double> tails;
  int conv = 0;
  for (workload::Job* job : jobs) {
    const auto times = job->iteration_times_seconds();
    const double tail = analysis::tail_mean(times, 8);
    tails.push_back(tail);
    int last_bad = -1;
    for (std::size_t i = 0; i + 8 < times.size(); ++i) {
      if (times[i] > tail * 1.05) last_bad = static_cast<int>(i);
    }
    conv = std::max(conv, last_bad + 1);
  }
  out.tail = analysis::mean(tails);
  out.convergence = conv;
  return out;
}

/// Iterations until every fluid job stays within 2% of the 1.8 s ideal.
int fluid_convergence(double slope, double intercept) {
  analysis::FluidConfig fc;
  fc.dt = 5e-4;
  fc.f = std::make_shared<core::LinearAggressiveness>(slope, intercept);
  std::vector<analysis::FluidJobSpec> jobs(4);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    jobs[j].comm_seconds = 0.36;
    jobs[j].compute_seconds = 1.44;
    // Tiny stagger: the deterministic fluid model needs a symmetry
    // breaker (the packet simulator gets one for free from loss noise).
    jobs[j].start_offset = 0.02 * static_cast<double>(j);
  }
  analysis::FluidSimulator fluid(fc, jobs);
  fluid.run_iterations(150, 1e4);
  int conv = 0;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const auto times = fluid.iteration_times(j);
    int last_bad = -1;
    for (std::size_t i = 0; i < times.size(); ++i) {
      if (times[i] > 1.8 * 1.02) last_bad = static_cast<int>(i);
    }
    conv = std::max(conv, last_bad + 1);
  }
  return conv;
}

}  // namespace

int main() {
  std::printf("MLTCP design-choice ablations.\n");
  const workload::ModelProfile gpt2 = workload::gpt2_profile();

  // All six packet-level runs (sections A, C, D) are independent worlds:
  // one campaign, sharded across threads, results read back by index.
  const core::MltcpConfig oracle = bench::mltcp_config_for(gpt2, 1e9, 4);
  core::MltcpConfig learned;  // total_bytes = 0, comp_time = 0 -> learn
  learned.tracker.learn_min_gap = sim::milliseconds(20);
  const std::vector<PacketSpec> packet_specs = {
      {core::mltcp_reno_factory(oracle), 1, true},   // (A) oracle
      {core::mltcp_reno_factory(learned), 1, true},  // (A) auto-learn
      {core::mltcp_reno_factory(oracle), 1, true},   // (C) ack_every=1
      {core::mltcp_reno_factory(oracle), 2, true},   // (C) ack_every=2
      {core::reno_factory(), 1, true},               // (D) idle restart on
      {core::reno_factory(), 1, false},              // (D) idle restart off
  };
  const std::vector<Outcome> packet = runner::run_campaign<PacketSpec,
                                                           Outcome>(
      packet_specs,
      [](const PacketSpec& s, std::size_t) {
        return run_packet(s.cc, s.ack_every, s.slow_start_after_idle);
      },
      bench::campaign_options());

  // (B) is a 3x3 grid of fluid-model runs: its own campaign.
  struct Grid {
    double slope;
    double intercept;
  };
  std::vector<Grid> grid;
  for (const double slope : {0.875, 1.75, 3.5}) {
    for (const double intercept : {0.125, 0.25, 0.5}) {
      grid.push_back(Grid{slope, intercept});
    }
  }
  const std::vector<int> grid_conv = runner::run_campaign<Grid, int>(
      grid,
      [](const Grid& g, std::size_t) {
        return fluid_convergence(g.slope, g.intercept);
      },
      bench::campaign_options());

  bench::print_header("(A) oracle parameters vs Algorithm 1 auto-learning");
  std::printf("oracle:     converged %.3fs by iteration %d\n",
              packet[0].tail, packet[0].convergence);
  std::printf("auto-learn: converged %.3fs by iteration %d "
              "(learning costs a few extra iterations)\n",
              packet[1].tail, packet[1].convergence);

  bench::print_header("(B) Slope/Intercept sensitivity (fluid model, "
                      "4 jobs, a=0.2, T=1.8)");
  std::printf("slope,intercept,iters_to_interleave\n");
  for (std::size_t i = 0; i < grid.size(); ++i) {
    std::printf("%.3f,%.3f,%d\n", grid[i].slope, grid[i].intercept,
                grid_conv[i]);
  }
  std::printf("Expected shape: larger Slope/Intercept ratio converges "
              "faster; the paper's 1.75/0.25 is a robust middle point.\n");

  bench::print_header("(C) per-packet ACKs vs delayed ACKs (ack_every=2)");
  std::printf("ack_every=1: converged %.3fs by iteration %d\n",
              packet[2].tail, packet[2].convergence);
  std::printf("ack_every=2: converged %.3fs by iteration %d "
              "(num_acks batching preserves byte accounting)\n",
              packet[3].tail, packet[3].convergence);

  bench::print_header("(D) RFC 2861 slow-start-after-idle (plain Reno "
                      "baseline)");
  std::printf("enabled (Linux default): converged %.3fs by iteration %d\n",
              packet[4].tail, packet[4].convergence);
  std::printf("disabled: converged %.3fs by iteration %d (persistent cwnd "
              "lets the previous winner keep winning, an accidental partial "
              "interleaver)\n",
              packet[5].tail, packet[5].convergence);
  return 0;
}
