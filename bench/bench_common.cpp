#include "bench_common.hpp"

#include <sys/resource.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "workload/collective.hpp"

namespace mltcp::bench {

double peak_rss_mb() {
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

std::unique_ptr<Experiment> make_experiment(const ScenarioConfig& cfg) {
  auto exp = std::make_unique<Experiment>();
  exp->scenario = cfg;
  net::DumbbellConfig dc;
  dc.hosts_per_side = cfg.hosts_per_side;
  dc.host_rate_bps = cfg.host_rate_bps;
  dc.bottleneck_rate_bps = cfg.bottleneck_rate_bps;
  dc.host_delay = cfg.host_delay;
  dc.bottleneck_delay = cfg.bottleneck_delay;
  dc.bottleneck_queue = cfg.bottleneck_queue;
  exp->dumbbell = net::make_dumbbell(exp->sim, dc);
  exp->cluster = std::make_unique<workload::Cluster>(exp->sim);
  return exp;
}

workload::Job* add_profile_job(Experiment& exp,
                               const workload::ModelProfile& profile,
                               int host_index, const tcp::CcFactory& cc,
                               const ProfileJobOptions& opts) {
  workload::JobSpec spec;
  spec.name = profile.model_name + "@" + std::to_string(host_index);
  const std::int64_t total =
      workload::comm_bytes(profile, exp.scenario.bottleneck_rate_bps);
  const int n = std::max(opts.num_flows, 1);
  for (int f = 0; f < n; ++f) {
    spec.flows.push_back(workload::FlowSpec{
        exp.dumbbell.left.at(host_index), exp.dumbbell.right.at(host_index),
        total / n});
  }
  spec.compute_time = workload::compute_time(profile) + opts.extra_compute;
  spec.noise_stddev_seconds = opts.noise_stddev_seconds;
  spec.start_time = opts.start_time;
  spec.max_iterations = opts.max_iterations;
  spec.gate_period = opts.gate_period;
  spec.cc = cc;
  spec.sender.pfabric_priority = opts.pfabric_priority;
  return exp.cluster->add_job(spec);
}

core::MltcpConfig mltcp_config_for(const workload::ModelProfile& profile,
                                   double bottleneck_rate_bps,
                                   int num_flows) {
  core::MltcpConfig cfg;
  cfg.tracker.total_bytes =
      workload::comm_bytes(profile, bottleneck_rate_bps) /
      std::max(num_flows, 1);
  cfg.tracker.comp_time = workload::compute_time(profile) / 2;
  return cfg;
}

sim::RateBinner* bottleneck_binner_for_flow(Experiment& exp, net::FlowId flow,
                                            sim::SimTime bin_width) {
  exp.binners.push_back(std::make_unique<sim::RateBinner>(bin_width));
  sim::RateBinner* binner = exp.binners.back().get();
  exp.bottleneck().add_tx_observer(
      [binner, flow](const net::Packet& pkt, sim::SimTime now) {
        if (pkt.flow == flow && pkt.type == net::PacketType::kData) {
          binner->add(now, pkt.size_bytes);
        }
      });
  return binner;
}

sim::RateBinner* bottleneck_binner_for_job(Experiment& exp,
                                           std::size_t job_index,
                                           sim::SimTime bin_width) {
  exp.binners.push_back(std::make_unique<sim::RateBinner>(bin_width));
  sim::RateBinner* binner = exp.binners.back().get();
  std::vector<net::FlowId> ids;
  for (const tcp::TcpFlow* flow : exp.cluster->flows_of(job_index)) {
    ids.push_back(flow->id());
  }
  exp.bottleneck().add_tx_observer(
      [binner, ids](const net::Packet& pkt, sim::SimTime now) {
        if (pkt.type != net::PacketType::kData) return;
        for (const net::FlowId id : ids) {
          if (pkt.flow == id) {
            binner->add(now, pkt.size_bytes);
            return;
          }
        }
      });
  return binner;
}

void print_header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

void print_series(const std::string& name, const std::vector<double>& xs) {
  std::printf("%s:", name.c_str());
  for (double x : xs) std::printf(" %.4g", x);
  std::printf("\n");
}

void print_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    std::printf("%s%s", cells[i].c_str(), i + 1 < cells.size() ? " | " : "\n");
  }
}

runner::CampaignOptions campaign_options() {
  return runner::options_from_env();
}

void write_sink(const runner::CsvSink& sink, const std::string& name) {
  sink.write(results_dir() + "/" + name + ".csv");
}

std::string results_dir() {
  const char* env = std::getenv("MLTCP_RESULTS_DIR");
  const std::string dir = env != nullptr ? env : "results";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best effort
  return dir;
}

std::unique_ptr<sim::CsvWriter> open_csv(
    const std::string& name, const std::vector<std::string>& header) {
  return std::make_unique<sim::CsvWriter>(results_dir() + "/" + name + ".csv",
                                          header);
}

}  // namespace mltcp::bench
