// Automated fidelity gate between the packet-level and flow-level backends:
// runs sampled workload slices through both and fails (exit 1) when the
// flow-level approximation drifts beyond the documented bounds, so a change
// to either backend that silently degrades the correspondence breaks CI
// instead of quietly invalidating every flowsim campaign.
//
// Slices and bounds (see DESIGN.md "Flow-level backend" and EXPERIMENTS.md):
//  - training convergence (dumbbell, 2 and 4 MLTCP jobs at comm fraction
//    ~0.21, so the jobs are fully interleavable — the paper's regime):
//    completed iterations must match within 1; converged (tail-mean)
//    iteration time within 25%; the number of iterations until the schedule
//    settles (iteration time within 15% of the interleaved ideal) within 6
//    iterations of the packet backend. The fluid model has no slow start,
//    loss recovery or queueing delay, so it runs slightly fast — 25% is the
//    parity bound the backend's unit test states as well.
//  - FCT tails (leaf-spine Poisson/Pareto matrix, identical arrival list on
//    both backends): p50 within 35% and p99 within 50% (the fluid model has
//    no queueing delay, which is exactly what stretches the packet p99),
//    and the completed-transfer counts within 5% — so the tail metrics the
//    flowsim scale campaigns report mean what they would at packet
//    fidelity, up to these stated factors.
//  - solver health: the water-filling allocator must stay event-driven —
//    mean bottleneck-freeze rounds per recompute <= 8 and zero stalls on
//    healthy (fault-free) slices.
//  - mode identity: every fluid slice is re-run with
//    FlowSimConfig::full_recompute (the reference global waterfill) and the
//    model outputs — per-job iteration-time vectors, FCT vectors — must be
//    BIT-identical to the incremental dirty-set path. The incremental
//    solver is an exact-arithmetic optimization, not an approximation; any
//    divergence is a bug, so the bound is zero mismatches, not a tolerance.
//
// Modes:
//   fidelity_gate          full gate (the recorded bounds)
//   fidelity_gate --quick  CI smoke variant: shorter slices, same bounds

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "analysis/metrics.hpp"
#include "bench_common.hpp"
#include "core/mltcp.hpp"
#include "flowsim/flow_simulator.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "tcp/reno.hpp"
#include "traffic/pattern.hpp"
#include "traffic/source.hpp"
#include "workload/cluster.hpp"

namespace {

using namespace mltcp;

struct GateCheck {
  std::string slice;
  std::string metric;
  double value = 0.0;  ///< Measured (relative error or raw count).
  double bound = 0.0;  ///< value <= bound passes.
  bool ok = false;
};

std::vector<GateCheck> g_checks;

void check(const std::string& slice, const std::string& metric, double value,
           double bound) {
  GateCheck c{slice, metric, value, bound, value <= bound};
  std::printf("GATE slice=%s metric=%s value=%.4f bound=%.4f verdict=%s\n",
              c.slice.c_str(), c.metric.c_str(), c.value, c.bound,
              c.ok ? "ok" : "FAIL");
  std::fflush(stdout);
  g_checks.push_back(std::move(c));
}

double rel_error(double measured, double reference) {
  return reference != 0.0 ? std::abs(measured - reference) / reference
                          : std::abs(measured);
}

/// Bit-exact divergence count between two model-output vectors: a length
/// mismatch counts the length delta, every element compared with == (no
/// tolerance — the incremental solver must reproduce the reference global
/// waterfill exactly).
double mismatches(const std::vector<double>& a, const std::vector<double>& b) {
  double n = std::abs(static_cast<double>(a.size()) -
                      static_cast<double>(b.size()));
  const std::size_t common = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (a[i] != b[i]) n += 1.0;
  }
  return n;
}

// --------------------------------------------------- training convergence

/// Per-job iteration 2 flows x 4 MB = 64 ms of bottleneck time, compute
/// 240 ms: comm fraction ~0.21, so up to 4 jobs are fully interleavable —
/// the regime where MLTCP's convergence dynamics are the thing under test.
constexpr std::int64_t kTrainFlowBytes = 4'000'000;
constexpr double kIdealPeriodS = 2 * 8.0 * kTrainFlowBytes / 1e9 + 0.240;

struct TrainingOutcome {
  std::vector<int> iterations;     ///< Completed per job.
  double tail_mean_s = 0.0;        ///< Converged iteration time, job mean.
  double converge_iter = 0.0;      ///< Mean iterations until interleaved.
  std::vector<double> iter_times;  ///< All jobs' iteration times, in order.
  flowsim::FlowSimStats fs_stats;  ///< Zero-initialized on the packet run.
};

/// Iterations before the schedule settles: one past the last iteration
/// whose duration still exceeded the interleaved ideal by more than 15%.
double converged_after(const std::vector<double>& times) {
  std::size_t after = 0;
  for (std::size_t i = 0; i < times.size(); ++i) {
    if (times[i] > 1.15 * kIdealPeriodS) after = i + 1;
  }
  return static_cast<double>(after);
}

/// `n_jobs` MLTCP training jobs on a shared dumbbell bottleneck, identical
/// workload on either backend.
TrainingOutcome run_training(bool fluid, int n_jobs, int iters,
                             bool full_recompute = false) {
  sim::Simulator sim;
  net::DumbbellConfig dc;
  dc.hosts_per_side = n_jobs;
  auto d = net::make_dumbbell(sim, dc);
  std::unique_ptr<flowsim::FlowSimulator> fs;
  workload::Cluster cluster(sim);
  if (fluid) {
    flowsim::FlowSimConfig fc;
    fc.full_recompute = full_recompute;
    fs = std::make_unique<flowsim::FlowSimulator>(sim, *d.topology, fc);
    cluster.set_backend(fs.get());
  }

  std::vector<workload::Job*> jobs;
  for (int j = 0; j < n_jobs; ++j) {
    workload::JobSpec spec;
    spec.name = "train" + std::to_string(j);
    spec.flows = {{d.left[j], d.right[j], kTrainFlowBytes},
                  {d.left[j], d.right[j], kTrainFlowBytes}};
    spec.compute_time = sim::milliseconds(240);
    spec.max_iterations = iters;
    spec.start_time = sim::milliseconds(7 * j);
    spec.cc = core::mltcp_reno_factory();
    jobs.push_back(cluster.add_job(spec));
  }
  cluster.start_all();
  sim.run_until(sim::seconds(120));

  TrainingOutcome out;
  double tail = 0.0;
  double converge = 0.0;
  for (const workload::Job* job : jobs) {
    out.iterations.push_back(job->completed_iterations());
    const auto times = job->iteration_times_seconds();
    out.iter_times.insert(out.iter_times.end(), times.begin(), times.end());
    tail += analysis::tail_mean(times, 5);
    converge += converged_after(times);
  }
  out.tail_mean_s = tail / static_cast<double>(n_jobs);
  out.converge_iter = converge / static_cast<double>(n_jobs);
  if (fs) out.fs_stats = fs->stats();
  return out;
}

void gate_training(int n_jobs, int iters) {
  const std::string slice = "train" + std::to_string(n_jobs);
  const TrainingOutcome packet = run_training(false, n_jobs, iters);
  const TrainingOutcome fluid = run_training(true, n_jobs, iters);
  std::printf("  (%s: packet tail-mean %.3fs converged@%.1f | fluid "
              "tail-mean %.3fs converged@%.1f | ideal %.3fs)\n",
              slice.c_str(), packet.tail_mean_s, packet.converge_iter,
              fluid.tail_mean_s, fluid.converge_iter, kIdealPeriodS);

  int max_iter_diff = 0;
  for (int j = 0; j < n_jobs; ++j) {
    max_iter_diff = std::max(
        max_iter_diff, std::abs(packet.iterations[j] - fluid.iterations[j]));
  }
  check(slice, "iterations_diff", max_iter_diff, 1.0);
  check(slice, "tail_mean_rel_err",
        rel_error(fluid.tail_mean_s, packet.tail_mean_s), 0.25);
  check(slice, "convergence_iter_diff",
        std::abs(packet.converge_iter - fluid.converge_iter), 6.0);

  const auto& st = fluid.fs_stats;
  check(slice, "waterfill_rounds_per_recompute",
        st.recomputes > 0 ? static_cast<double>(st.waterfill_rounds) /
                                static_cast<double>(st.recomputes)
                          : 0.0,
        8.0);
  check(slice, "stalls", static_cast<double>(st.stalls), 0.0);

  // Mode identity: the incremental dirty-set solver vs. the reference full
  // waterfill, same workload. Bit-exact or bust.
  const TrainingOutcome full = run_training(true, n_jobs, iters, true);
  double iter_diff = mismatches(fluid.iter_times, full.iter_times);
  for (int j = 0; j < n_jobs; ++j) {
    if (fluid.iterations[j] != full.iterations[j]) iter_diff += 1.0;
  }
  check(slice, "mode_identity_mismatches", iter_diff, 0.0);
}

// ------------------------------------------------------------- FCT tails

struct FctOutcome {
  analysis::FctStats stats;
  std::size_t posted = 0;
  std::vector<double> fcts;  ///< Completed FCTs in completion order.
  flowsim::FlowSimStats fs_stats;
};

/// Replays one fixed Poisson/Pareto arrival list over a small leaf-spine
/// fabric. The list is a pure function of the config seed, so the packet
/// and fluid runs see byte-identical traffic.
FctOutcome run_fct(bool fluid, bool quick, bool full_recompute = false) {
  sim::Simulator sim;
  net::LeafSpineConfig cfg;
  cfg.racks = 2;
  cfg.hosts_per_rack = 4;
  cfg.spines = 2;
  cfg.host_rate_bps = 4e9;
  cfg.fabric_rate_bps = 1e9;
  auto ls = net::make_leaf_spine(sim, cfg);
  std::unique_ptr<flowsim::FlowSimulator> fs;
  workload::Cluster cluster(sim);
  if (fluid) {
    flowsim::FlowSimConfig fc;
    fc.full_recompute = full_recompute;
    fs = std::make_unique<flowsim::FlowSimulator>(sim, *ls.topology, fc);
    cluster.set_backend(fs.get());
  }

  std::vector<net::Host*> hosts;
  for (const auto& rack : ls.racks) {
    hosts.insert(hosts.end(), rack.begin(), rack.end());
  }
  traffic::TrafficSource source(
      sim, cluster, hosts,
      traffic::SourceOptions{[] { return std::make_unique<tcp::RenoCC>(); },
                             {},
                             {}});
  traffic::TrafficConfig tc;
  tc.pattern = traffic::Pattern::kPoisson;
  tc.size_dist = traffic::SizeDist::kPareto;
  tc.mean_bytes = 40'000;
  tc.flows_per_second = 1500.0;
  tc.start = 0;
  tc.stop = sim::seconds(quick ? 1 : 3);
  tc.seed = 11;
  source.install(tc);

  // Generous drain window past the last arrival, so only pathological
  // transfers stay open.
  sim.run_until(tc.stop + sim::seconds(2));

  FctOutcome out;
  out.fcts = source.completed_fcts_seconds();
  out.stats = analysis::fct_stats(out.fcts, source.open());
  out.posted = source.posted();
  if (fs) out.fs_stats = fs->stats();
  return out;
}

void gate_fct(bool quick) {
  const FctOutcome packet = run_fct(false, quick);
  const FctOutcome fluid = run_fct(true, quick);
  std::printf("  (posted %zu; packet completed %zu p50 %.4fs p99 %.4fs | "
              "fluid completed %zu p50 %.4fs p99 %.4fs)\n",
              packet.posted, packet.stats.completed, packet.stats.p50_s,
              packet.stats.p99_s, fluid.stats.completed, fluid.stats.p50_s,
              fluid.stats.p99_s);

  check("fct", "completed_rel_err",
        rel_error(static_cast<double>(fluid.stats.completed),
                  static_cast<double>(packet.stats.completed)),
        0.05);
  check("fct", "p50_rel_err", rel_error(fluid.stats.p50_s, packet.stats.p50_s),
        0.35);
  check("fct", "p99_rel_err", rel_error(fluid.stats.p99_s, packet.stats.p99_s),
        0.50);

  const auto& st = fluid.fs_stats;
  check("fct", "waterfill_rounds_per_recompute",
        st.recomputes > 0 ? static_cast<double>(st.waterfill_rounds) /
                                static_cast<double>(st.recomputes)
                          : 0.0,
        8.0);
  check("fct", "stalls", static_cast<double>(st.stalls), 0.0);

  // Mode identity: the completed-FCT vector (order included) must be
  // bit-identical between the incremental and full-recompute solvers.
  const FctOutcome full = run_fct(true, quick, true);
  check("fct", "mode_identity_mismatches", mismatches(fluid.fcts, full.fcts),
        0.0);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  bench::print_header(quick ? "fidelity gate (quick)" : "fidelity gate");

  gate_training(2, quick ? 10 : 20);
  gate_training(4, quick ? 10 : 20);
  gate_fct(quick);

  auto csv = bench::open_csv("fidelity_gate",
                             {"slice", "metric", "value", "bound", "ok"});
  std::size_t failures = 0;
  for (const GateCheck& c : g_checks) {
    csv->row({c.slice, c.metric, std::to_string(c.value),
              std::to_string(c.bound), c.ok ? "1" : "0"});
    if (!c.ok) ++failures;
  }

  if (failures > 0) {
    std::printf("\nFIDELITY GATE FAILED: %zu of %zu checks out of bounds\n",
                failures, g_checks.size());
    return 1;
  }
  std::printf("\nFidelity gate passed: %zu checks within bounds.\n",
              g_checks.size());
  return 0;
}
