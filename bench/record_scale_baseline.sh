#!/usr/bin/env bash
# Records cluster-scale forwarding numbers into results/BENCH_scale.json so
# the events/sec trajectory of the packet path is tracked in-repo.
#
# Runs bench/cluster_scale (RESULT lines: dumbbell scenarios + leaf-spine
# jobs x flows sweep) and merges the parsed numbers into the JSON file.
# Existing sections other than the one being written are preserved, so the
# recorded pre-change "baseline" section survives re-runs.
#
# Usage:
#   bench/record_scale_baseline.sh                  # record into "current"
#   SECTION=baseline bench/record_scale_baseline.sh # record a named section
#   QUICK=1 ...                                     # CI smoke sweep point
#   REPEAT=3 ...                                    # best-of-N per scenario
#     (identical simulated work per repeat; min wall time suppresses
#     shared-host noise)
#   BACKGROUND=poisson ...                          # overlay a background
#     traffic matrix (see cluster_scale --background); the pattern is
#     recorded per run, and the regression gate only compares runs whose
#     background matches, so mixed-traffic numbers never gate clean ones.
#   SHARDS=4 ...                                    # sharded PDES execution
#     (cluster_scale --shards; leaf-spine scenarios only). The shard count
#     is part of the gate key, so sharded and serial recordings never gate
#     each other.
#   JOBS=2048 ...                                   # add an extra leaf-spine
#     sweep point with this many jobs (cluster_scale --jobs).
#   CHECK_AGAINST=baseline TOLERANCE=0.10 ...       # after recording, exit 1
#     if any run present in both sections regressed events/sec by more than
#     TOLERANCE. Note: the recorded section was measured on the machine that
#     ran this script, so cross-machine comparisons gate only coarse
#     regressions — the in-repo baseline is the pre-change tree on the
#     recording machine.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"
OUT="$ROOT/results/BENCH_scale.json"
SECTION="${SECTION:-current}"
QUICK="${QUICK:-0}"
REPEAT="${REPEAT:-1}"
BACKGROUND="${BACKGROUND:-none}"
SHARDS="${SHARDS:-1}"
JOBS="${JOBS:-0}"
CHECK_AGAINST="${CHECK_AGAINST:-}"
TOLERANCE="${TOLERANCE:-0.10}"

RAW="$BUILD/cluster_scale.txt"
ARGS=()
if [ "$QUICK" = "1" ]; then ARGS+=(--quick); fi
if [ "$REPEAT" != "1" ]; then ARGS+=(--repeat="$REPEAT"); fi
if [ "$BACKGROUND" != "none" ]; then ARGS+=(--background="$BACKGROUND"); fi
if [ "$SHARDS" != "1" ]; then ARGS+=(--shards="$SHARDS"); fi
if [ "$JOBS" != "0" ]; then ARGS+=(--jobs="$JOBS"); fi

MLTCP_RESULTS_DIR="${MLTCP_RESULTS_DIR:-$ROOT/results}" \
  "$BUILD/bench/cluster_scale" "${ARGS[@]+"${ARGS[@]}"}" | tee "$RAW"

python3 - "$OUT" "$SECTION" "$RAW" "$CHECK_AGAINST" "$TOLERANCE" <<'PY'
import json, re, sys

out_path, section, raw_path, check_against, tolerance = sys.argv[1:6]
tolerance = float(tolerance)

runs = []
with open(raw_path) as f:
    for line in f:
        if not line.startswith("RESULT "):
            continue
        kv = dict(item.split("=", 1) for item in line.split()[1:])
        runs.append({
            "name": kv["name"],
            "jobs": int(kv["jobs"]),
            "flows": int(kv["flows"]),
            # Sharded-PDES fields postdate older recordings: missing means a
            # serial run (1 shard / 1 worker, no cross-shard traffic).
            "shards": int(kv.get("shards", "1")),
            "workers": int(kv.get("workers", "1")),
            "sim_s": float(kv["sim_s"]),
            "events": int(kv["events"]),
            "wall_s": float(kv["wall_s"]),
            "events_per_sec": round(float(kv["events_per_sec"]), 1),
            "peak_rss_mb": float(kv["peak_rss_mb"]),
            "rss_delta_mb": float(kv.get("rss_delta_mb", "0")),
            "null_msgs": int(kv.get("null_msgs", "0")),
            "stalls": int(kv.get("stalls", "0")),
            # Full-state FNV-1a digest: byte-identical across shard counts
            # by the PDES determinism guarantee (tests/test_pdes.cpp).
            "digest": kv.get("digest", ""),
            # Older recordings predate the --background flag: they are clean
            # runs, so the gate treats a missing field as "none".
            "background": kv.get("background", "none"),
        })
if not runs:
    sys.exit("no RESULT lines found in " + raw_path)

try:
    with open(out_path) as f:
        doc = json.load(f)
except FileNotFoundError:
    doc = {"schema": 1, "note": "cluster-scale forwarding benchmark record; "
           "see bench/record_scale_baseline.sh and DESIGN.md "
           "'Forwarding path & scale'"}

doc[section] = {"runs": runs}

with open(out_path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote section '{section}' to {out_path}")

if check_against:
    base = {(r["name"], r["jobs"], r.get("shards", 1),
             r.get("background", "none")): r
            for r in doc.get(check_against, {}).get("runs", [])}
    failures = []
    for r in runs:
        b = base.get((r["name"], r["jobs"], r["shards"], r["background"]))
        if b is None:
            continue
        floor = b["events_per_sec"] * (1.0 - tolerance)
        verdict = "ok" if r["events_per_sec"] >= floor else "REGRESSED"
        print(f"gate {r['name']} jobs={r['jobs']}: "
              f"{r['events_per_sec']:.0f} ev/s vs {check_against} "
              f"{b['events_per_sec']:.0f} (floor {floor:.0f}) -> {verdict}")
        if verdict != "ok":
            failures.append(r)
    if failures:
        sys.exit(f"{len(failures)} run(s) regressed events/sec by more than "
                 f"{tolerance:.0%} vs section '{check_against}'")
PY
