// Figure 6: two GPT-2 jobs start with fully overlapping communication
// phases; MLTCP-Reno slides them apart over a few iterations until they are
// interleaved. We print (i) the per-iteration start-time offset between the
// jobs and their comm durations, and (ii) the per-job bottleneck bandwidth
// in 100 ms bins, which renders the same picture as the paper's figure.
//
// On top of the canonical fully-overlapped start, a campaign sweeps the
// initial offset between the two jobs: convergence must be insensitive to
// where the random walk begins. The sweep runs are independent simulations
// sharded across threads (MLTCP_THREADS); rows land in the CSV keyed by
// spec index, so the file is byte-identical at any thread count.

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "analysis/flow_monitor.hpp"
#include "analysis/metrics.hpp"
#include "bench_common.hpp"
#include "runner/trace.hpp"

namespace {

using namespace mltcp;

constexpr int kIterations = 30;

/// Initial offsets (fractions of the iteration period) between the two
/// jobs' starts. 0 is the paper's fully-overlapped worst case.
constexpr double kStartFractions[] = {0.0, 0.1, 0.25, 0.4};

struct SweepResult {
  runner::Report detail;   ///< full per-iteration tables (printed for run 0)
  double tail0 = 0.0;      ///< converged iteration time, job 0
  double tail1 = 0.0;      ///< converged iteration time, job 1
  int converged_by = 0;    ///< first iteration with both within 5% of ideal
};

SweepResult run(double start_fraction, std::size_t run_index,
                runner::CsvSink& csv) {
  auto exp = bench::make_experiment();
  const workload::ModelProfile gpt2 = workload::gpt2_profile();
  const double period = sim::to_seconds(gpt2.ideal_iteration_time);

  std::vector<workload::Job*> jobs;
  for (int i = 0; i < 2; ++i) {
    bench::ProfileJobOptions opts;
    opts.max_iterations = kIterations;
    if (i == 1) {
      opts.start_time = sim::from_seconds(start_fraction * period);
    }
    const core::MltcpConfig cfg = bench::mltcp_config_for(
        gpt2, exp->scenario.bottleneck_rate_bps, opts.num_flows);
    jobs.push_back(bench::add_profile_job(
        *exp, gpt2, i, core::mltcp_reno_factory(cfg), opts));
  }
  std::vector<sim::RateBinner*> binners;
  for (std::size_t j = 0; j < 2; ++j) {
    binners.push_back(
        bench::bottleneck_binner_for_job(*exp, j, sim::milliseconds(100)));
  }

  // Every run exports a Chrome trace (job phase slices, loss events, MLTCP
  // milestones, sampled per-flow cwnd/gain) keyed by its sweep index —
  // open results/fig6_sliding.run0.trace.json in ui.perfetto.dev.
  runner::RunTrace trace(
      runner::trace_path(bench::results_dir(), "fig6_sliding", run_index),
      telemetry::Category::kJob | telemetry::Category::kFlow |
          telemetry::Category::kTcp | telemetry::Category::kMltcp);
  trace.attach(exp->sim);
  std::vector<std::unique_ptr<analysis::FlowMonitor>> monitors;
  for (workload::Job* job : jobs) {
    for (const auto& binding : job->flows()) {
      monitors.push_back(std::make_unique<analysis::FlowMonitor>(
          exp->sim, binding.flow->tcp()->sender(), sim::milliseconds(50)));
    }
  }

  exp->cluster->start_all();
  exp->sim.run_until(sim::seconds(70));
  trace.finish();

  SweepResult res;
  res.detail.addf(
      "\n==== per-iteration shift (offset between comm starts) ====\n");
  res.detail.addf("iter,offset_s,comm0_s,comm1_s,iter0_s,iter1_s\n");
  const auto& r0 = jobs[0]->iterations();
  const auto& r1 = jobs[1]->iterations();
  const std::size_t n = std::min(r0.size(), r1.size());
  int last_bad = -1;
  for (std::size_t i = 0; i < n; ++i) {
    double offset =
        std::fmod(sim::to_seconds(r1[i].comm_start - r0[i].comm_start),
                  period);
    if (offset < 0) offset += period;
    const double comm0 = sim::to_seconds(r0[i].comm_end - r0[i].comm_start);
    const double comm1 = sim::to_seconds(r1[i].comm_end - r1[i].comm_start);
    const double it0 = sim::to_seconds(r0[i].iter_end - r0[i].comm_start);
    const double it1 = sim::to_seconds(r1[i].iter_end - r1[i].comm_start);
    res.detail.addf("%zu,%.3f,%.3f,%.3f,%.3f,%.3f\n", i, offset, comm0,
                    comm1, it0, it1);
    csv.append(run_index,
               std::vector<double>{start_fraction, static_cast<double>(i),
                                   offset, comm0, comm1, it0, it1});
    if (it0 > period * 1.05 || it1 > period * 1.05) {
      last_bad = static_cast<int>(i);
    }
  }
  res.converged_by = last_bad + 1;

  res.detail.addf("\n==== bandwidth (Gbps, 100ms bins, first 15s) ====\n");
  res.detail.addf("time_s,job0,job1\n");
  for (std::size_t b = 0; b < 150 && b < binners[0]->bin_count(); ++b) {
    res.detail.addf(
        "%.1f,%.3f,%.3f\n", sim::to_seconds(binners[0]->bin_time(b)),
        binners[0]->rate_gbps(b),
        b < binners[1]->bin_count() ? binners[1]->rate_gbps(b) : 0.0);
  }

  res.tail0 = analysis::tail_mean(jobs[0]->iteration_times_seconds(), 5);
  res.tail1 = analysis::tail_mean(jobs[1]->iteration_times_seconds(), 5);
  res.detail.addf("\nconverged iteration times: %.3fs / %.3fs (ideal "
                  "%.3fs)\n",
                  res.tail0, res.tail1, period);
  return res;
}

}  // namespace

int main() {
  std::printf("Reproduces Figure 6 of MLTCP (HotNets'24): two GPT-2 jobs "
              "sliding into interleaving.\n");

  const double period =
      sim::to_seconds(workload::gpt2_profile().ideal_iteration_time);

  runner::CsvSink csv({"start_offset_frac", "iter", "offset_s", "comm0_s",
                       "comm1_s", "iter0_s", "iter1_s"});
  std::vector<double> fractions(std::begin(kStartFractions),
                                std::end(kStartFractions));
  const std::vector<SweepResult> results =
      runner::run_campaign<double, SweepResult>(
          fractions,
          [&csv](const double f, std::size_t i) { return run(f, i, csv); },
          bench::campaign_options());
  bench::write_sink(csv, "fig6_sliding");

  // The canonical fully-overlapped start keeps its full detail output.
  std::fputs(results[0].detail.text().c_str(), stdout);

  bench::print_header("initial-offset sweep (robustness of the slide)");
  std::printf("start_offset_frac,converged_by_iter,tail0_s,tail1_s\n");
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    std::printf("%.2f,%d,%.3f,%.3f\n", fractions[i],
                results[i].converged_by, results[i].tail0,
                results[i].tail1);
  }
  std::printf("Expected shape: every starting offset converges to the same "
              "interleaved state (tails at the %.1fs ideal).\n", period);
  return 0;
}
