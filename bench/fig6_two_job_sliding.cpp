// Figure 6: two GPT-2 jobs start with fully overlapping communication
// phases; MLTCP-Reno slides them apart over a few iterations until they are
// interleaved. We print (i) the per-iteration start-time offset between the
// jobs and their comm durations, and (ii) the per-job bottleneck bandwidth
// in 100 ms bins, which renders the same picture as the paper's figure.

#include <cmath>
#include <cstdio>
#include <vector>

#include "analysis/metrics.hpp"
#include "bench_common.hpp"

namespace {

using namespace mltcp;

constexpr int kIterations = 30;

}  // namespace

int main() {
  std::printf("Reproduces Figure 6 of MLTCP (HotNets'24): two GPT-2 jobs "
              "sliding into interleaving.\n");

  auto exp = bench::make_experiment();
  const workload::ModelProfile gpt2 = workload::gpt2_profile();

  std::vector<workload::Job*> jobs;
  for (int i = 0; i < 2; ++i) {
    bench::ProfileJobOptions opts;
    opts.max_iterations = kIterations;
    const core::MltcpConfig cfg = bench::mltcp_config_for(
        gpt2, exp->scenario.bottleneck_rate_bps, opts.num_flows);
    jobs.push_back(bench::add_profile_job(
        *exp, gpt2, i, core::mltcp_reno_factory(cfg), opts));
  }
  std::vector<sim::RateBinner*> binners;
  for (std::size_t j = 0; j < 2; ++j) {
    binners.push_back(
        bench::bottleneck_binner_for_job(*exp, j, sim::milliseconds(100)));
  }

  exp->cluster->start_all();
  exp->sim.run_until(sim::seconds(70));

  bench::print_header("per-iteration shift (offset between comm starts)");
  auto csv = bench::open_csv(
      "fig6_sliding",
      {"iter", "offset_s", "comm0_s", "comm1_s", "iter0_s", "iter1_s"});
  std::printf("iter,offset_s,comm0_s,comm1_s,iter0_s,iter1_s\n");
  const double period = sim::to_seconds(gpt2.ideal_iteration_time);
  const auto& r0 = jobs[0]->iterations();
  const auto& r1 = jobs[1]->iterations();
  const std::size_t n = std::min(r0.size(), r1.size());
  for (std::size_t i = 0; i < n; ++i) {
    double offset =
        std::fmod(sim::to_seconds(r1[i].comm_start - r0[i].comm_start),
                  period);
    if (offset < 0) offset += period;
    const double comm0 = sim::to_seconds(r0[i].comm_end - r0[i].comm_start);
    const double comm1 = sim::to_seconds(r1[i].comm_end - r1[i].comm_start);
    const double it0 = sim::to_seconds(r0[i].iter_end - r0[i].comm_start);
    const double it1 = sim::to_seconds(r1[i].iter_end - r1[i].comm_start);
    std::printf("%zu,%.3f,%.3f,%.3f,%.3f,%.3f\n", i, offset, comm0, comm1,
                it0, it1);
    csv->row(std::vector<double>{static_cast<double>(i), offset, comm0,
                                 comm1, it0, it1});
  }

  bench::print_header("bandwidth (Gbps, 100ms bins, first 15s)");
  std::printf("time_s,job0,job1\n");
  for (std::size_t b = 0; b < 150 && b < binners[0]->bin_count(); ++b) {
    std::printf("%.1f,%.3f,%.3f\n", sim::to_seconds(binners[0]->bin_time(b)),
                binners[0]->rate_gbps(b),
                b < binners[1]->bin_count() ? binners[1]->rate_gbps(b) : 0.0);
  }

  const double tail0 =
      analysis::tail_mean(jobs[0]->iteration_times_seconds(), 5);
  const double tail1 =
      analysis::tail_mean(jobs[1]->iteration_times_seconds(), 5);
  std::printf("\nconverged iteration times: %.3fs / %.3fs (ideal %.3fs)\n",
              tail0, tail1, period);
  return 0;
}
