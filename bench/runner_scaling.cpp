// Micro-benchmark for the campaign runner: shards a batch of 32 independent
// packet-level simulations across 1 / 2 / 4 threads, verifies that the
// aggregated CSV output is byte-identical at every thread count (results are
// keyed by spec index, never by completion order), and reports the
// wall-clock speedup over the serial run.
//
//   ./build/bench/runner_scaling            # 32 runs, threads {1,2,4}
//   MLTCP_RUNS=64 ./build/bench/runner_scaling
//
// On a single-core machine the speedup degenerates to ~1x (the pool runs
// everything inline); the byte-identity check is meaningful regardless.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "analysis/metrics.hpp"
#include "bench_common.hpp"

namespace {

using namespace mltcp;

/// One small but non-trivial run: two GPT-2 jobs contending on a dumbbell
/// for 8 iterations, with a per-spec noise level so every run's event
/// trajectory is unique. ~100 ms of wall clock each.
struct ScalingSpec {
  double noise_stddev_seconds = 0.0;
};

struct ScalingResult {
  double tail_mean_s = 0.0;
  double mean_s = 0.0;
};

ScalingResult run_one(const ScalingSpec& spec) {
  bench::ScenarioConfig scenario;
  scenario.hosts_per_side = 2;
  auto exp = bench::make_experiment(scenario);
  const workload::ModelProfile gpt2 = workload::gpt2_profile();
  const core::MltcpConfig cfg =
      bench::mltcp_config_for(gpt2, scenario.bottleneck_rate_bps);
  std::vector<workload::Job*> jobs;
  for (int i = 0; i < 2; ++i) {
    bench::ProfileJobOptions opts;
    opts.max_iterations = 8;
    opts.noise_stddev_seconds = spec.noise_stddev_seconds;
    jobs.push_back(bench::add_profile_job(*exp, gpt2, i,
                                          core::mltcp_reno_factory(cfg),
                                          opts));
  }
  exp->cluster->start_all();
  exp->sim.run_until(sim::seconds(25));

  ScalingResult res;
  std::vector<double> tails;
  std::vector<double> means;
  for (workload::Job* job : jobs) {
    tails.push_back(analysis::tail_mean(job->iteration_times_seconds(), 3));
    means.push_back(analysis::mean(job->iteration_times_seconds()));
  }
  res.tail_mean_s = analysis::mean(tails);
  res.mean_s = analysis::mean(means);
  return res;
}

/// Executes the whole campaign at `threads` and returns the serialized CSV
/// plus the wall-clock seconds it took.
struct CampaignOutcome {
  std::string csv;
  double wall_seconds = 0.0;
};

CampaignOutcome run_campaign_at(const std::vector<ScalingSpec>& specs,
                                int threads) {
  runner::CsvSink sink({"run", "noise_s", "mean_iter_s", "tail_iter_s"});
  runner::CampaignOptions opts;
  opts.threads = threads;
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<ScalingResult> results =
      runner::run_campaign<ScalingSpec, ScalingResult>(
          specs,
          [&sink](const ScalingSpec& s, std::size_t i) {
            const ScalingResult r = run_one(s);
            sink.append(i, std::vector<double>{static_cast<double>(i),
                                               s.noise_stddev_seconds,
                                               r.mean_s, r.tail_mean_s});
            return r;
          },
          opts);
  const auto t1 = std::chrono::steady_clock::now();
  (void)results;
  CampaignOutcome out;
  out.csv = sink.serialize();
  out.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  return out;
}

}  // namespace

int main() {
  int runs = 32;
  if (const char* env = std::getenv("MLTCP_RUNS")) {
    runs = std::max(std::atoi(env), 1);
  }
  std::vector<ScalingSpec> specs;
  for (int i = 0; i < runs; ++i) {
    specs.push_back(ScalingSpec{0.001 + 0.0005 * i});
  }

  std::printf("campaign-runner scaling: %d independent sim runs "
              "(hardware threads: %u)\n",
              runs, std::thread::hardware_concurrency());

  const CampaignOutcome serial = run_campaign_at(specs, 1);
  std::printf("threads=1: %.2fs (serial reference)\n", serial.wall_seconds);

  bool identical = true;
  for (const int threads : {2, 4}) {
    const CampaignOutcome par = run_campaign_at(specs, threads);
    const bool same = par.csv == serial.csv;
    identical = identical && same;
    std::printf("threads=%d: %.2fs, speedup %.2fx, output %s\n", threads,
                par.wall_seconds, serial.wall_seconds / par.wall_seconds,
                same ? "byte-identical to serial"
                     : "DIFFERS FROM SERIAL (bug!)");
  }

  // Persist the serial CSV (all thread counts produced the same bytes).
  const std::string path = bench::results_dir() + "/runner_scaling.csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f != nullptr) {
    std::fwrite(serial.csv.data(), 1, serial.csv.size(), f);
    std::fclose(f);
  }
  if (!identical) {
    std::printf("FAIL: parallel output diverged from serial\n");
    return 1;
  }
  return 0;
}
