#!/usr/bin/env bash
# Records flow-level backend scale numbers into results/BENCH_flowsim.json,
# tracking the transfers/sec trajectory of the flowsim path the way
# record_scale_baseline.sh tracks the packet path's events/sec.
#
# Runs bench/flowsim_scale (RESULT lines: poisson matrix + MLTCP training
# campaign) and merges the parsed numbers into the JSON file. Existing
# sections other than the one being written are preserved, so recorded
# baselines survive re-runs.
#
# Usage:
#   bench/record_flowsim_baseline.sh                    # record "current"
#   SECTION=baseline bench/record_flowsim_baseline.sh   # named section
#   QUICK=1 ...                                         # CI smoke variant
#   CHECK_AGAINST=baseline TOLERANCE=0.10 ...           # after recording,
#     exit 1 if any run present in both sections regressed transfers/sec by
#     more than TOLERANCE. The recorded section was measured on the machine
#     that ran this script, so cross-machine comparisons gate only coarse
#     regressions.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"
OUT="$ROOT/results/BENCH_flowsim.json"
SECTION="${SECTION:-current}"
QUICK="${QUICK:-0}"
CHECK_AGAINST="${CHECK_AGAINST:-}"
TOLERANCE="${TOLERANCE:-0.10}"

RAW="$BUILD/flowsim_scale.txt"
ARGS=()
if [ "$QUICK" = "1" ]; then ARGS+=(--quick); fi

MLTCP_RESULTS_DIR="${MLTCP_RESULTS_DIR:-$ROOT/results}" \
  "$BUILD/bench/flowsim_scale" "${ARGS[@]+"${ARGS[@]}"}" | tee "$RAW"

python3 - "$OUT" "$SECTION" "$RAW" "$CHECK_AGAINST" "$TOLERANCE" <<'PY'
import json, sys

out_path, section, raw_path, check_against, tolerance = sys.argv[1:6]
tolerance = float(tolerance)

runs = []
with open(raw_path) as f:
    for line in f:
        if not line.startswith("RESULT "):
            continue
        kv = dict(item.split("=", 1) for item in line.split()[1:])
        runs.append({
            "name": kv["name"],
            "transfers": int(kv["transfers"]),
            "completed": int(kv["completed"]),
            "sim_s": float(kv["sim_s"]),
            "events": int(kv["events"]),
            "wall_s": float(kv["wall_s"]),
            "transfers_per_sec": round(float(kv["transfers_per_sec"]), 1),
            "events_per_sec": round(float(kv["events_per_sec"]), 1),
            "recomputes": int(kv["recomputes"]),
            "p99_fct_s": float(kv["p99_fct_s"]),
            "peak_rss_mb": float(kv["peak_rss_mb"]),
        })
if not runs:
    sys.exit("no RESULT lines found in " + raw_path)

try:
    with open(out_path) as f:
        doc = json.load(f)
except FileNotFoundError:
    doc = {"schema": 1, "note": "flow-level backend scale record; see "
           "bench/record_flowsim_baseline.sh, bench/flowsim_scale and "
           "DESIGN.md 'Flow-level backend'"}

doc[section] = {"runs": runs}

with open(out_path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote section '{section}' to {out_path}")

if check_against:
    base = {r["name"]: r
            for r in doc.get(check_against, {}).get("runs", [])}
    failures = []
    for r in runs:
        b = base.get(r["name"])
        if b is None:
            continue
        floor = b["transfers_per_sec"] * (1.0 - tolerance)
        verdict = "ok" if r["transfers_per_sec"] >= floor else "REGRESSED"
        print(f"gate {r['name']}: {r['transfers_per_sec']:.0f} transfers/s "
              f"vs {check_against} {b['transfers_per_sec']:.0f} "
              f"(floor {floor:.0f}) -> {verdict}")
        if verdict != "ok":
            failures.append(r)
    if failures:
        sys.exit(f"{len(failures)} run(s) regressed transfers/sec by more "
                 f"than {tolerance:.0%} vs section '{check_against}'")
PY
