#!/usr/bin/env bash
# Records flow-level backend scale numbers into results/BENCH_flowsim.json,
# tracking the transfers/sec trajectory of the flowsim path the way
# record_scale_baseline.sh tracks the packet path's events/sec.
#
# Runs bench/flowsim_scale (RESULT lines: poisson-1m million-transfer point,
# poisson matrix, MLTCP training campaign, poisson-sharded PDES sanity) and
# merges the parsed numbers into the JSON file. Existing sections other than
# the one being written are preserved, so recorded baselines survive re-runs.
#
# Two gates run when CHECK_AGAINST is set:
#  - throughput: transfers/sec must stay within TOLERANCE of the named
#    section (machine-speed dependent -> coarse, default 10%).
#  - recompute ceiling: fills_per_transfer (waterfill channel-rate freezes
#    per completed transfer — the solver's algorithmic work metric) must not
#    exceed the named section's value by more than RECOMPUTE_CEILING
#    (default 1.5x). This is machine-independent: a silent fall-back from
#    the dirty-set recompute to full waterfills (~8 fills/transfer on the
#    poisson matrix vs ~1.2 incremental) trips it even on a fast box.
#
# Usage:
#   bench/record_flowsim_baseline.sh                    # record "current"
#   SECTION=baseline bench/record_flowsim_baseline.sh   # named section
#   QUICK=1 ...                                         # CI smoke variant
#   CHECK_AGAINST=baseline TOLERANCE=0.10 RECOMPUTE_CEILING=1.5 ...
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"
OUT="$ROOT/results/BENCH_flowsim.json"
SECTION="${SECTION:-current}"
QUICK="${QUICK:-0}"
CHECK_AGAINST="${CHECK_AGAINST:-}"
TOLERANCE="${TOLERANCE:-0.10}"
RECOMPUTE_CEILING="${RECOMPUTE_CEILING:-1.5}"

RAW="$BUILD/flowsim_scale.txt"
ARGS=()
if [ "$QUICK" = "1" ]; then ARGS+=(--quick); fi

MLTCP_RESULTS_DIR="${MLTCP_RESULTS_DIR:-$ROOT/results}" \
  "$BUILD/bench/flowsim_scale" "${ARGS[@]+"${ARGS[@]}"}" | tee "$RAW"

python3 - "$OUT" "$SECTION" "$RAW" "$CHECK_AGAINST" "$TOLERANCE" \
  "$RECOMPUTE_CEILING" <<'PY'
import json, sys

(out_path, section, raw_path, check_against, tolerance,
 recompute_ceiling) = sys.argv[1:7]
tolerance = float(tolerance)
recompute_ceiling = float(recompute_ceiling)

INT_KEYS = {"transfers", "completed", "shards", "events", "recomputes",
            "full_recomputes", "waterfill_rounds", "waterfill_channels",
            "frozen_skips", "dirty_links", "heap_updates", "matched"}
runs = []
with open(raw_path) as f:
    for line in f:
        if not line.startswith("RESULT "):
            continue
        kv = dict(item.split("=", 1) for item in line.split()[1:])
        runs.append({k: (int(v) if k in INT_KEYS
                         else v if k == "name" else float(v))
                     for k, v in kv.items()})
if not runs:
    sys.exit("no RESULT lines found in " + raw_path)

try:
    with open(out_path) as f:
        doc = json.load(f)
except FileNotFoundError:
    doc = {"schema": 1, "note": "flow-level backend scale record; see "
           "bench/record_flowsim_baseline.sh, bench/flowsim_scale and "
           "DESIGN.md 'Flow-level backend'"}

doc[section] = {"runs": runs}

with open(out_path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote section '{section}' to {out_path}")

if check_against:
    base = {r["name"]: r
            for r in doc.get(check_against, {}).get("runs", [])}
    failures = []
    for r in runs:
        b = base.get(r["name"])
        if b is None:
            continue
        floor = b["transfers_per_sec"] * (1.0 - tolerance)
        verdict = "ok" if r["transfers_per_sec"] >= floor else "REGRESSED"
        print(f"gate {r['name']}: {r['transfers_per_sec']:.0f} transfers/s "
              f"vs {check_against} {b['transfers_per_sec']:.0f} "
              f"(floor {floor:.0f}) -> {verdict}")
        if verdict != "ok":
            failures.append(r)
        # Algorithmic gate: solver work per transfer (machine-independent).
        # Older sections predate the counter; skip them.
        if "fills_per_transfer" in b and b["fills_per_transfer"] > 0:
            ceiling = b["fills_per_transfer"] * recompute_ceiling
            fpt = r.get("fills_per_transfer", 0.0)
            verdict = "ok" if fpt <= ceiling else "REGRESSED"
            print(f"gate {r['name']}: {fpt:.3f} fills/transfer vs "
                  f"{check_against} {b['fills_per_transfer']:.3f} "
                  f"(ceiling {ceiling:.3f}) -> {verdict}")
            if verdict != "ok":
                failures.append(r)
    if failures:
        sys.exit(f"{len(failures)} gate failure(s) vs section "
                 f"'{check_against}' (tolerance {tolerance:.0%}, "
                 f"recompute ceiling {recompute_ceiling:g}x)")
PY
