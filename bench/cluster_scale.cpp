// Cluster-scale forwarding benchmark: how many simulator events per second
// the packet path sustains as the workload grows from the paper's dumbbell
// to a leaf-spine fabric with hundreds of jobs and thousands of flows.
//
// Two parts:
//  - dumbbell scenarios: the fig4/fig6-shaped workloads whose per-packet
//    cost the forwarding path dominates. These are the perf-gated numbers
//    (events/sec must not regress; see bench/record_scale_baseline.sh).
//  - leaf-spine sweep: jobs x flows-per-job scaling (8 -> 256 jobs, up to
//    ~4k flows) across a racks x spines fabric, recording events/sec, wall
//    time and peak RSS — the memory-stability evidence for cluster scale.
//
// Output: one `RESULT key=value ...` line per run (parsed by
// record_scale_baseline.sh) plus a CSV in results_dir().
//
// Modes:
//   cluster_scale                  full sweep (8..256 jobs)
//   cluster_scale --quick          CI smoke point (8 jobs, short windows)
//   cluster_scale --only=NAME      run only scenarios named NAME
//                                  (dumbbell | leafspine)
//   cluster_scale --repeat=N       run each scenario N times, report the
//                                  fastest (simulated work is identical per
//                                  repeat; min wall time is the standard
//                                  noise-robust estimator on shared hosts)
//   cluster_scale --background=P   overlay a Reno background traffic matrix
//                                  (poisson | incast | tornado | alltoall |
//                                  permutation) on every run, so the gated
//                                  events/sec also covers the mixed-traffic
//                                  forwarding path. The pattern is recorded
//                                  in the RESULT lines / CSV / JSON, keeping
//                                  background and clean numbers separate.

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/mltcp.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "tcp/cong_control.hpp"
#include "traffic/source.hpp"
#include "workload/cluster.hpp"
#include "workload/profiles.hpp"

namespace {

using namespace mltcp;

double peak_rss_mb() {
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

struct RunResult {
  std::string name;
  int jobs = 0;
  int flows = 0;
  double sim_s = 0.0;
  std::uint64_t events = 0;
  double wall_s = 0.0;
  double events_per_sec = 0.0;
  double rss_mb = 0.0;
  std::string background = "none";
};

void print_result(const RunResult& r) {
  std::printf("RESULT name=%s jobs=%d flows=%d sim_s=%.3f events=%" PRIu64
              " wall_s=%.4f events_per_sec=%.1f peak_rss_mb=%.1f "
              "background=%s\n",
              r.name.c_str(), r.jobs, r.flows, r.sim_s, r.events, r.wall_s,
              r.events_per_sec, r.rss_mb, r.background.c_str());
  std::fflush(stdout);
}

// ---------------------------------------------------------------- background

/// "none", or a traffic::Pattern display name. Parsed once in main; invalid
/// names abort instead of silently measuring the clean path under a label
/// that claims otherwise.
struct BackgroundSpec {
  bool enabled = false;
  traffic::Pattern pattern = traffic::Pattern::kPoisson;
  std::string label = "none";
};

BackgroundSpec parse_background(const std::string& name) {
  BackgroundSpec spec;
  if (name.empty() || name == "none") return spec;
  for (const traffic::Pattern p : traffic::all_patterns()) {
    if (name == traffic::pattern_name(p)) {
      spec.enabled = true;
      spec.pattern = p;
      spec.label = name;
      return spec;
    }
  }
  std::fprintf(stderr, "unknown --background pattern '%s' (valid: none",
               name.c_str());
  for (const traffic::Pattern p : traffic::all_patterns()) {
    std::fprintf(stderr, " | %s", traffic::pattern_name(p));
  }
  std::fprintf(stderr, ")\n");
  std::exit(2);
}

/// Overlays the pattern on `hosts` for the whole measurement window. Plain
/// Reno with Pareto sizes — the legacy datacenter mix the training jobs
/// contend with; intensity is fixed so events/sec across sweeps stays
/// comparable.
std::unique_ptr<traffic::TrafficSource> install_background(
    sim::Simulator& sim, workload::Cluster& cluster,
    std::vector<net::Host*> hosts, const BackgroundSpec& spec,
    sim::SimTime window) {
  if (!spec.enabled) return nullptr;
  auto source = std::make_unique<traffic::TrafficSource>(
      sim, cluster, std::move(hosts),
      traffic::SourceOptions{[] { return std::make_unique<tcp::RenoCC>(); },
                             {},
                             {}});
  traffic::TrafficConfig cfg;
  cfg.pattern = spec.pattern;
  cfg.size_dist = traffic::SizeDist::kPareto;
  cfg.mean_bytes = 40'000;
  cfg.flows_per_second = 400.0;
  cfg.epoch = sim::milliseconds(200);
  cfg.start = 0;
  cfg.stop = window;
  cfg.seed = 1;  // One fixed stream per pattern; repeats stay identical.
  source->install(cfg);
  return source;
}

/// Runs `sim` until `deadline` and fills in the measured rates.
RunResult measure(const std::string& name, int jobs, int flows,
                  sim::Simulator& sim, sim::SimTime deadline) {
  RunResult r;
  r.name = name;
  r.jobs = jobs;
  r.flows = flows;
  r.sim_s = sim::to_seconds(deadline);
  const auto t0 = std::chrono::steady_clock::now();
  sim.run_until(deadline);
  const auto t1 = std::chrono::steady_clock::now();
  r.events = sim.events_executed();
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.events_per_sec =
      r.wall_s > 0.0 ? static_cast<double>(r.events) / r.wall_s : 0.0;
  r.rss_mb = peak_rss_mb();
  return r;
}

// ------------------------------------------------------------- dumbbell part

/// The fig4 shape: `n_jobs` MLTCP-Reno jobs with 4 flows each on the shared
/// dumbbell bottleneck. This is the workload whose events/sec the perf gate
/// tracks.
RunResult run_dumbbell(int n_jobs, sim::SimTime window,
                       const BackgroundSpec& background) {
  bench::ScenarioConfig cfg;
  cfg.hosts_per_side = n_jobs;
  auto exp = bench::make_experiment(cfg);
  const workload::ModelProfile gpt2 = workload::gpt2_profile();
  const core::MltcpConfig mcfg =
      bench::mltcp_config_for(gpt2, cfg.bottleneck_rate_bps);
  for (int j = 0; j < n_jobs; ++j) {
    bench::ProfileJobOptions opts;
    opts.start_time = sim::milliseconds(40 * j);
    bench::add_profile_job(*exp, gpt2, j, core::mltcp_reno_factory(mcfg),
                           opts);
  }
  std::vector<net::Host*> hosts(exp->dumbbell.left.begin(),
                                exp->dumbbell.left.end());
  hosts.insert(hosts.end(), exp->dumbbell.right.begin(),
               exp->dumbbell.right.end());
  const auto source = install_background(exp->sim, *exp->cluster,
                                         std::move(hosts), background, window);
  exp->cluster->start_all();
  RunResult r = measure("dumbbell", n_jobs, n_jobs * 4, exp->sim, window);
  r.background = background.label;
  return r;
}

// ------------------------------------------------------------ leaf-spine part

/// One scale point: `n_jobs` jobs of `flows_per_job` flows each on a
/// racks x spines fabric. Jobs are placed round-robin on rack pairs
/// (rack r -> rack r+1), so neighbouring jobs share ToR uplinks and the
/// spine layer spreads flows by ECMP where available.
RunResult run_leaf_spine(int n_jobs, int flows_per_job, sim::SimTime window,
                         const BackgroundSpec& background) {
  sim::Simulator sim;
  net::LeafSpineConfig ls_cfg;
  ls_cfg.racks = 16;
  ls_cfg.hosts_per_rack = 16;
  ls_cfg.spines = 4;
  ls_cfg.host_rate_bps = 4e9;
  ls_cfg.fabric_rate_bps = 1e9;
  net::LeafSpine ls = net::make_leaf_spine(sim, ls_cfg);

  const workload::ModelProfile gpt2 = workload::gpt2_profile();
  const std::int64_t total_bytes =
      workload::comm_bytes(gpt2, ls_cfg.fabric_rate_bps);
  core::MltcpConfig mcfg;
  mcfg.tracker.total_bytes = total_bytes / flows_per_job;
  mcfg.tracker.comp_time = workload::compute_time(gpt2) / 2;

  workload::Cluster cluster(sim);
  for (int j = 0; j < n_jobs; ++j) {
    const int src_rack = j % ls_cfg.racks;
    const int dst_rack = (src_rack + 1) % ls_cfg.racks;
    const int base_host = (j / ls_cfg.racks) % ls_cfg.hosts_per_rack;
    workload::JobSpec spec;
    spec.name = "job" + std::to_string(j);
    for (int f = 0; f < flows_per_job; ++f) {
      const int h = (base_host + f) % ls_cfg.hosts_per_rack;
      spec.flows.push_back(workload::FlowSpec{
          ls.racks[src_rack][h], ls.racks[dst_rack][h],
          total_bytes / flows_per_job});
    }
    spec.compute_time = workload::compute_time(gpt2);
    spec.start_time = sim::milliseconds(10 * (j % 64));
    spec.cc = core::mltcp_reno_factory(mcfg);
    cluster.add_job(spec);
  }
  std::vector<net::Host*> hosts;
  for (const auto& rack : ls.racks) {
    hosts.insert(hosts.end(), rack.begin(), rack.end());
  }
  const auto source = install_background(sim, cluster, std::move(hosts),
                                         background, window);
  cluster.start_all();
  RunResult r = measure("leafspine", n_jobs, n_jobs * flows_per_job, sim,
                        window);
  r.background = background.label;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  int repeat = 1;
  std::string only;
  std::string background_name;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strncmp(argv[i], "--only=", 7) == 0) only = argv[i] + 7;
    if (std::strncmp(argv[i], "--repeat=", 9) == 0) {
      repeat = std::max(1, std::atoi(argv[i] + 9));
    }
    if (std::strncmp(argv[i], "--background=", 13) == 0) {
      background_name = argv[i] + 13;
    }
  }
  const BackgroundSpec background = parse_background(background_name);
  const auto selected = [&only](const char* name) {
    return only.empty() || only == name;
  };
  // Every repeat simulates the identical event sequence; only the wall time
  // varies (host noise), so keeping the fastest run measures the code, not
  // the neighbours.
  const auto best_of = [repeat](const auto& run) {
    RunResult best = run();
    for (int i = 1; i < repeat; ++i) {
      RunResult r = run();
      if (r.wall_s < best.wall_s) best = r;
    }
    return best;
  };

  bench::print_header(quick ? "cluster scale (quick)" : "cluster scale");
  std::vector<RunResult> results;

  // Dumbbell: the perf-gated scenarios. Windows sized so each run executes
  // tens of millions of events — long enough to dominate setup cost.
  if (selected("dumbbell")) {
    results.push_back(best_of([&] {
      return run_dumbbell(2, sim::seconds(quick ? 4 : 20), background);
    }));
    results.push_back(best_of([&] {
      return run_dumbbell(8, sim::seconds(quick ? 2 : 10), background);
    }));
  }

  // Leaf-spine sweep: scaling in job count at a fixed fan-out.
  if (selected("leafspine")) {
    const int flows_per_job = 16;
    std::vector<int> sweep = quick ? std::vector<int>{8}
                                   : std::vector<int>{8, 32, 64, 128, 256};
    for (const int jobs : sweep) {
      const sim::SimTime window =
          quick ? sim::milliseconds(1500) : sim::seconds(jobs >= 128 ? 2 : 4);
      results.push_back(best_of([&] {
        return run_leaf_spine(jobs, flows_per_job, window, background);
      }));
    }
  }

  for (const RunResult& r : results) print_result(r);

  auto csv = bench::open_csv(
      "cluster_scale", {"name", "jobs", "flows", "sim_s", "events", "wall_s",
                        "events_per_sec", "peak_rss_mb", "background"});
  for (const RunResult& r : results) {
    csv->row({r.name, std::to_string(r.jobs), std::to_string(r.flows),
              std::to_string(r.sim_s), std::to_string(r.events),
              std::to_string(r.wall_s), std::to_string(r.events_per_sec),
              std::to_string(r.rss_mb), r.background});
  }
  return 0;
}
