// Cluster-scale forwarding benchmark: how many simulator events per second
// the packet path sustains as the workload grows from the paper's dumbbell
// to a leaf-spine fabric with hundreds of jobs and thousands of flows.
//
// Two parts:
//  - dumbbell scenarios: the fig4/fig6-shaped workloads whose per-packet
//    cost the forwarding path dominates. These are the perf-gated numbers
//    (events/sec must not regress; see bench/record_scale_baseline.sh).
//  - leaf-spine sweep: jobs x flows-per-job scaling (8 -> 256 jobs, up to
//    ~4k flows) across a racks x spines fabric, recording events/sec, wall
//    time and peak RSS — the memory-stability evidence for cluster scale.
//
// Output: one `RESULT key=value ...` line per run (parsed by
// record_scale_baseline.sh) plus a CSV in results_dir().
//
// Modes:
//   cluster_scale                  full sweep (8..256 jobs)
//   cluster_scale --quick          CI smoke point (8 jobs, short windows)
//   cluster_scale --only=NAME      run only scenarios named NAME
//                                  (dumbbell | leafspine)
//   cluster_scale --repeat=N       run each scenario N times, report the
//                                  fastest (simulated work is identical per
//                                  repeat; min wall time is the standard
//                                  noise-robust estimator on shared hosts)
//   cluster_scale --background=P   overlay a Reno background traffic matrix
//                                  (poisson | incast | tornado | alltoall |
//                                  permutation) on every run, so the gated
//                                  events/sec also covers the mixed-traffic
//                                  forwarding path. The pattern is recorded
//                                  in the RESULT lines / CSV / JSON, keeping
//                                  background and clean numbers separate.
//   cluster_scale --shards=N       run the leaf-spine sweep on the sharded
//                                  PDES engine (N shards, one worker thread
//                                  each; MLTCP_SHARDS is the env twin, the
//                                  flag wins). Model state is byte-identical
//                                  at every shard count — the `digest` field
//                                  and the cluster_scale_sim.csv rows must
//                                  not change with N, only wall time does.
//                                  Dumbbell scenarios stay serial (a 2-node
//                                  core offers no useful cut).
//   cluster_scale --jobs=N         add one leaf-spine point with N jobs (a
//                                  short window), e.g. the 2048-job sharded
//                                  scale record.

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/mltcp.hpp"
#include "net/topology.hpp"
#include "pdes/partition.hpp"
#include "pdes/sharded_runner.hpp"
#include "sim/simulator.hpp"
#include "tcp/cong_control.hpp"
#include "traffic/source.hpp"
#include "workload/cluster.hpp"
#include "workload/profiles.hpp"

namespace {

using namespace mltcp;

struct RunResult {
  std::string name;
  int jobs = 0;
  int flows = 0;
  int shards = 1;
  int workers = 1;
  double sim_s = 0.0;
  std::uint64_t events = 0;
  double wall_s = 0.0;
  double events_per_sec = 0.0;
  double rss_mb = 0.0;        ///< Campaign-level peak (high-water mark).
  double rss_delta_mb = 0.0;  ///< Peak growth during this run (serial only).
  std::uint64_t null_msgs = 0;
  std::uint64_t stalls = 0;
  std::uint64_t digest = 0;  ///< FNV-1a over final model state.
  std::string background = "none";
};

void print_result(const RunResult& r) {
  std::printf("RESULT name=%s jobs=%d flows=%d shards=%d workers=%d "
              "sim_s=%.3f events=%" PRIu64 " wall_s=%.4f "
              "events_per_sec=%.1f peak_rss_mb=%.1f rss_delta_mb=%.1f "
              "null_msgs=%" PRIu64 " stalls=%" PRIu64 " digest=%016" PRIx64
              " background=%s\n",
              r.name.c_str(), r.jobs, r.flows, r.shards, r.workers, r.sim_s,
              r.events, r.wall_s, r.events_per_sec, r.rss_mb, r.rss_delta_mb,
              r.null_msgs, r.stalls, r.digest, r.background.c_str());
  std::fflush(stdout);
}

// ------------------------------------------------------------ state digest

/// FNV-1a over the run's observable model state: every job's iteration
/// records, every link / host / switch counter, and the background source's
/// transfer totals. Identical across execution modes by the PDES identity
/// guarantee — the byte-diffable proof that sharding changed nothing but
/// wall time.
struct Fnv {
  std::uint64_t h = 1469598103934665603ull;
  void add(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
};

std::uint64_t state_digest(const workload::Cluster& cluster,
                           const net::Topology& topo,
                           const traffic::TrafficSource* background) {
  Fnv f;
  for (std::size_t j = 0; j < cluster.job_count(); ++j) {
    const workload::Job* job = cluster.job(j);
    f.add(static_cast<std::uint64_t>(job->completed_iterations()));
    for (const workload::IterationRecord& r : job->iterations()) {
      f.add(static_cast<std::uint64_t>(r.comm_start));
      f.add(static_cast<std::uint64_t>(r.comm_end));
      f.add(static_cast<std::uint64_t>(r.iter_end));
    }
  }
  for (const auto& link : topo.links()) {
    f.add(static_cast<std::uint64_t>(link->bytes_transmitted()));
    f.add(static_cast<std::uint64_t>(link->packets_transmitted()));
    f.add(static_cast<std::uint64_t>(link->fault_drops()));
  }
  for (const net::Host* h : topo.hosts()) {
    f.add(static_cast<std::uint64_t>(h->delivered_packets()));
  }
  for (const net::Switch* s : topo.switches()) {
    f.add(static_cast<std::uint64_t>(s->forwarded_packets()));
  }
  if (background != nullptr) {
    f.add(background->posted());
    f.add(background->completed());
    f.add(static_cast<std::uint64_t>(background->bytes_completed()));
  }
  return f.h;
}

// ---------------------------------------------------------------- background

/// "none", or a traffic::Pattern display name. Parsed once in main; invalid
/// names abort instead of silently measuring the clean path under a label
/// that claims otherwise.
struct BackgroundSpec {
  bool enabled = false;
  traffic::Pattern pattern = traffic::Pattern::kPoisson;
  std::string label = "none";
};

BackgroundSpec parse_background(const std::string& name) {
  BackgroundSpec spec;
  if (name.empty() || name == "none") return spec;
  for (const traffic::Pattern p : traffic::all_patterns()) {
    if (name == traffic::pattern_name(p)) {
      spec.enabled = true;
      spec.pattern = p;
      spec.label = name;
      return spec;
    }
  }
  std::fprintf(stderr, "unknown --background pattern '%s' (valid: none",
               name.c_str());
  for (const traffic::Pattern p : traffic::all_patterns()) {
    std::fprintf(stderr, " | %s", traffic::pattern_name(p));
  }
  std::fprintf(stderr, ")\n");
  std::exit(2);
}

/// Overlays the pattern on `hosts` for the whole measurement window. Plain
/// Reno with Pareto sizes — the legacy datacenter mix the training jobs
/// contend with; intensity is fixed so events/sec across sweeps stays
/// comparable. Under sharded execution pass `lane_of`/`lanes` (the
/// partition's shard mapper) so arrivals replay on per-shard lanes — the
/// arrival schedule, flow ids and FCT records stay identical to serial.
std::unique_ptr<traffic::TrafficSource> install_background(
    sim::Simulator& sim, workload::Cluster& cluster,
    std::vector<net::Host*> hosts, const BackgroundSpec& spec,
    sim::SimTime window,
    const std::function<int(const net::Host*)>& lane_of = {}, int lanes = 1) {
  if (!spec.enabled) return nullptr;
  auto source = std::make_unique<traffic::TrafficSource>(
      sim, cluster, std::move(hosts),
      traffic::SourceOptions{[] { return std::make_unique<tcp::RenoCC>(); },
                             {},
                             {}});
  traffic::TrafficConfig cfg;
  cfg.pattern = spec.pattern;
  cfg.size_dist = traffic::SizeDist::kPareto;
  cfg.mean_bytes = 40'000;
  cfg.flows_per_second = 400.0;
  cfg.epoch = sim::milliseconds(200);
  cfg.start = 0;
  cfg.stop = window;
  cfg.seed = 1;  // One fixed stream per pattern; repeats stay identical.
  if (lane_of) source->set_lane_map(lane_of, lanes);
  source->install(cfg);
  return source;
}

/// Runs `sim` (serial) or `runner` (sharded, when non-null) until `deadline`
/// and fills in the measured rates plus the per-run RSS delta.
RunResult measure(const std::string& name, int jobs, int flows,
                  sim::Simulator& sim, sim::SimTime deadline,
                  pdes::ShardedRunner* runner = nullptr) {
  RunResult r;
  r.name = name;
  r.jobs = jobs;
  r.flows = flows;
  r.sim_s = sim::to_seconds(deadline);
  auto probe = bench::RssProbe::begin();
  const auto t0 = std::chrono::steady_clock::now();
  if (runner != nullptr) {
    runner->run_until(deadline);
  } else {
    sim.run_until(deadline);
  }
  const auto t1 = std::chrono::steady_clock::now();
  probe.end();
  r.events = sim.events_executed();
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.events_per_sec =
      r.wall_s > 0.0 ? static_cast<double>(r.events) / r.wall_s : 0.0;
  r.rss_mb = bench::peak_rss_mb();
  r.rss_delta_mb = probe.delta_mb();
  if (runner != nullptr) {
    r.shards = runner->shards();
    r.workers = runner->workers();
    const pdes::ShardStats totals = runner->totals();
    r.null_msgs = totals.null_updates;
    r.stalls = totals.stalls;
  }
  return r;
}

// ------------------------------------------------------------- dumbbell part

/// The fig4 shape: `n_jobs` MLTCP-Reno jobs with 4 flows each on the shared
/// dumbbell bottleneck. This is the workload whose events/sec the perf gate
/// tracks.
RunResult run_dumbbell(int n_jobs, sim::SimTime window,
                       const BackgroundSpec& background) {
  bench::ScenarioConfig cfg;
  cfg.hosts_per_side = n_jobs;
  auto exp = bench::make_experiment(cfg);
  const workload::ModelProfile gpt2 = workload::gpt2_profile();
  const core::MltcpConfig mcfg =
      bench::mltcp_config_for(gpt2, cfg.bottleneck_rate_bps);
  for (int j = 0; j < n_jobs; ++j) {
    bench::ProfileJobOptions opts;
    opts.start_time = sim::milliseconds(40 * j);
    bench::add_profile_job(*exp, gpt2, j, core::mltcp_reno_factory(mcfg),
                           opts);
  }
  std::vector<net::Host*> hosts(exp->dumbbell.left.begin(),
                                exp->dumbbell.left.end());
  hosts.insert(hosts.end(), exp->dumbbell.right.begin(),
               exp->dumbbell.right.end());
  const auto source = install_background(exp->sim, *exp->cluster,
                                         std::move(hosts), background, window);
  exp->cluster->start_all();
  RunResult r = measure("dumbbell", n_jobs, n_jobs * 4, exp->sim, window);
  r.background = background.label;
  r.digest = state_digest(*exp->cluster, *exp->dumbbell.topology, source.get());
  return r;
}

// ------------------------------------------------------------ leaf-spine part

/// One scale point: `n_jobs` jobs of `flows_per_job` flows each on a
/// racks x spines fabric. Jobs are placed round-robin on rack pairs
/// (rack r -> rack r+1), so neighbouring jobs share ToR uplinks and the
/// spine layer spreads flows by ECMP where available.
///
/// With `shards > 1` the run executes on the sharded PDES engine: the
/// fabric is partitioned along rack boundaries (every job's sender hosts
/// co-located so job control stays shard-local), background arrivals replay
/// on per-shard lanes, and jobs kick off in their sender's shard. The model
/// state — and therefore `digest` — is byte-identical to the serial run.
RunResult run_leaf_spine(int n_jobs, int flows_per_job, sim::SimTime window,
                         const BackgroundSpec& background, int shards) {
  sim::Simulator sim;
  net::LeafSpineConfig ls_cfg;
  ls_cfg.racks = 16;
  ls_cfg.hosts_per_rack = 16;
  ls_cfg.spines = 4;
  ls_cfg.host_rate_bps = 4e9;
  ls_cfg.fabric_rate_bps = 1e9;
  net::LeafSpine ls = net::make_leaf_spine(sim, ls_cfg);

  const workload::ModelProfile gpt2 = workload::gpt2_profile();
  const std::int64_t total_bytes =
      workload::comm_bytes(gpt2, ls_cfg.fabric_rate_bps);
  core::MltcpConfig mcfg;
  mcfg.tracker.total_bytes = total_bytes / flows_per_job;
  mcfg.tracker.comp_time = workload::compute_time(gpt2) / 2;

  std::vector<workload::JobSpec> specs;
  for (int j = 0; j < n_jobs; ++j) {
    const int src_rack = j % ls_cfg.racks;
    const int dst_rack = (src_rack + 1) % ls_cfg.racks;
    const int base_host = (j / ls_cfg.racks) % ls_cfg.hosts_per_rack;
    workload::JobSpec spec;
    spec.name = "job" + std::to_string(j);
    for (int f = 0; f < flows_per_job; ++f) {
      const int h = (base_host + f) % ls_cfg.hosts_per_rack;
      spec.flows.push_back(workload::FlowSpec{
          ls.racks[src_rack][h], ls.racks[dst_rack][h],
          total_bytes / flows_per_job});
    }
    spec.compute_time = workload::compute_time(gpt2);
    spec.start_time = sim::milliseconds(10 * (j % 64));
    spec.cc = core::mltcp_reno_factory(mcfg);
    specs.push_back(std::move(spec));
  }

  workload::Cluster cluster(sim);
  for (const workload::JobSpec& spec : specs) cluster.add_job(spec);
  std::vector<net::Host*> hosts;
  for (const auto& rack : ls.racks) {
    hosts.insert(hosts.end(), rack.begin(), rack.end());
  }

  std::unique_ptr<pdes::ShardedRunner> runner;
  std::unique_ptr<traffic::TrafficSource> source;
  if (shards > 1) {
    pdes::PartitionOptions popts;
    popts.shards = shards;
    popts.co_locate = pdes::co_locate_senders(specs);
    const pdes::Partition part = pdes::partition_topology(*ls.topology, popts);
    sim.configure_shards(part.shards);
    source = install_background(
        sim, cluster, std::move(hosts), background, window,
        [part](const net::Host* h) { return part.shard_of(h); }, part.shards);
    runner = std::make_unique<pdes::ShardedRunner>(sim, *ls.topology, part);
    pdes::start_all_sharded(cluster, specs, sim, part);
  } else {
    source = install_background(sim, cluster, std::move(hosts), background,
                                window);
    cluster.start_all();
  }
  RunResult r = measure("leafspine", n_jobs, n_jobs * flows_per_job, sim,
                        window, runner.get());
  r.background = background.label;
  r.digest = state_digest(cluster, *ls.topology, source.get());
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  int repeat = 1;
  int shards = pdes::shards_from_env();
  int extra_jobs = 0;
  std::string only;
  std::string background_name;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strncmp(argv[i], "--only=", 7) == 0) only = argv[i] + 7;
    if (std::strncmp(argv[i], "--repeat=", 9) == 0) {
      repeat = std::max(1, std::atoi(argv[i] + 9));
    }
    if (std::strncmp(argv[i], "--background=", 13) == 0) {
      background_name = argv[i] + 13;
    }
    if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shards = std::max(1, std::atoi(argv[i] + 9));
    }
    if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      extra_jobs = std::max(0, std::atoi(argv[i] + 7));
    }
  }
  const BackgroundSpec background = parse_background(background_name);
  const auto selected = [&only](const char* name) {
    return only.empty() || only == name;
  };
  // Every repeat simulates the identical event sequence; only the wall time
  // varies (host noise), so keeping the fastest run measures the code, not
  // the neighbours.
  const auto best_of = [repeat](const auto& run) {
    RunResult best = run();
    for (int i = 1; i < repeat; ++i) {
      RunResult r = run();
      if (r.wall_s < best.wall_s) best = r;
    }
    return best;
  };

  bench::print_header(quick ? "cluster scale (quick)" : "cluster scale");
  if (shards > 1) {
    std::printf("sharded PDES execution: %d shards requested "
                "(dumbbell scenarios stay serial)\n",
                shards);
  }
  std::vector<RunResult> results;

  // Dumbbell: the perf-gated scenarios. Windows sized so each run executes
  // tens of millions of events — long enough to dominate setup cost.
  // Always serial: a dumbbell has exactly one inter-switch link, so a cut
  // would serialize on the bottleneck anyway.
  if (selected("dumbbell")) {
    results.push_back(best_of([&] {
      return run_dumbbell(2, sim::seconds(quick ? 4 : 20), background);
    }));
    results.push_back(best_of([&] {
      return run_dumbbell(8, sim::seconds(quick ? 2 : 10), background);
    }));
  }

  // Leaf-spine sweep: scaling in job count at a fixed fan-out.
  if (selected("leafspine")) {
    const int flows_per_job = 16;
    std::vector<int> sweep = quick ? std::vector<int>{8}
                                   : std::vector<int>{8, 32, 64, 128, 256};
    for (const int jobs : sweep) {
      const sim::SimTime window =
          quick ? sim::milliseconds(1500) : sim::seconds(jobs >= 128 ? 2 : 4);
      results.push_back(best_of([&] {
        return run_leaf_spine(jobs, flows_per_job, window, background, shards);
      }));
    }
    // Optional extra scale point (e.g. the 2048-job sharded record): a short
    // window keeps the wall time bounded while every job still posts flows.
    if (extra_jobs > 0) {
      results.push_back(best_of([&] {
        return run_leaf_spine(extra_jobs, flows_per_job,
                              sim::milliseconds(500), background, shards);
      }));
    }
  }

  for (const RunResult& r : results) print_result(r);

  auto csv = bench::open_csv(
      "cluster_scale",
      {"name", "jobs", "flows", "shards", "workers", "sim_s", "events",
       "wall_s", "events_per_sec", "peak_rss_mb", "rss_delta_mb", "null_msgs",
       "stalls", "digest", "background"});
  char digest_hex[17];
  for (const RunResult& r : results) {
    std::snprintf(digest_hex, sizeof digest_hex, "%016" PRIx64, r.digest);
    csv->row({r.name, std::to_string(r.jobs), std::to_string(r.flows),
              std::to_string(r.shards), std::to_string(r.workers),
              std::to_string(r.sim_s), std::to_string(r.events),
              std::to_string(r.wall_s), std::to_string(r.events_per_sec),
              std::to_string(r.rss_mb), std::to_string(r.rss_delta_mb),
              std::to_string(r.null_msgs), std::to_string(r.stalls),
              digest_hex, r.background});
  }

  // Simulation-deterministic companion CSV: only fields that are a pure
  // function of the model (no wall time, no RSS, and no event count — lane
  // timers repartition replay events across shards). The shard-speedup gate
  // byte-diffs this file across shard counts.
  auto sim_csv = bench::open_csv(
      "cluster_scale_sim",
      {"name", "jobs", "flows", "sim_s", "background", "digest"});
  for (const RunResult& r : results) {
    std::snprintf(digest_hex, sizeof digest_hex, "%016" PRIx64, r.digest);
    sim_csv->row({r.name, std::to_string(r.jobs), std::to_string(r.flows),
                  std::to_string(r.sim_s), r.background, digest_hex});
  }
  return 0;
}
