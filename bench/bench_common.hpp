#pragma once

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/mltcp.hpp"
#include "net/topology.hpp"
#include "runner/campaign.hpp"
#include "runner/sinks.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "workload/cluster.hpp"
#include "workload/profiles.hpp"

namespace mltcp::bench {

/// Shared scenario: the paper's dumbbell testbed, scaled from 50 Gbps to
/// 1 Gbps (see DESIGN.md) so packet-level runs stay fast while iteration
/// times remain in the paper's 1-2 s range.
struct ScenarioConfig {
  double bottleneck_rate_bps = 1e9;
  double host_rate_bps = 4e9;
  int hosts_per_side = 8;
  sim::SimTime host_delay = sim::microseconds(5);
  sim::SimTime bottleneck_delay = sim::microseconds(20);
  net::QueueFactory bottleneck_queue;  ///< default drop-tail
};

/// One packet-level experiment: simulator + dumbbell + job cluster.
struct Experiment {
  sim::Simulator sim;
  net::Dumbbell dumbbell;
  std::unique_ptr<workload::Cluster> cluster;
  ScenarioConfig scenario;
  std::vector<std::unique_ptr<sim::RateBinner>> binners;

  net::Link& bottleneck() { return *dumbbell.bottleneck; }
};

std::unique_ptr<Experiment> make_experiment(const ScenarioConfig& cfg = {});

/// Adds a single-flow job crossing the bottleneck (left[i] -> right[i]),
/// shaped by `profile` at the experiment's bottleneck rate.
struct ProfileJobOptions {
  sim::SimTime start_time = 0;
  int max_iterations = 0;
  double noise_stddev_seconds = 0.0;
  bool pfabric_priority = false;
  /// Parallel TCP streams carrying the job's collective (NCCL uses several
  /// sockets per peer); the iteration's bytes are split evenly across them.
  int num_flows = 4;
  /// Added to the profile's compute time (e.g. period-harmonization pads).
  sim::SimTime extra_compute = 0;
  /// See JobConfig::gate_period (centralized schedule enforcement).
  sim::SimTime gate_period = 0;
};

workload::Job* add_profile_job(Experiment& exp,
                               const workload::ModelProfile& profile,
                               int host_index, const tcp::CcFactory& cc,
                               const ProfileJobOptions& opts = {});

/// MLTCP configuration matched to a profile: TOTAL_BYTES is each flow's
/// share of the job's bytes per iteration and COMP_TIME is half the compute
/// phase (well above any RTT, well below the real gap).
core::MltcpConfig mltcp_config_for(const workload::ModelProfile& profile,
                                   double bottleneck_rate_bps,
                                   int num_flows = 4);

/// Attaches a per-flow bandwidth binner to the forward bottleneck link.
/// Returned pointers live as long as the experiment.
sim::RateBinner* bottleneck_binner_for_flow(Experiment& exp, net::FlowId flow,
                                            sim::SimTime bin_width);

/// Binner aggregating all flows of one job (by cluster job index).
sim::RateBinner* bottleneck_binner_for_job(Experiment& exp,
                                           std::size_t job_index,
                                           sim::SimTime bin_width);

/// ---- memory attribution ----

/// Process-wide peak RSS in MB. This is a kernel high-water mark: across a
/// campaign it reflects the largest-footprint run so far plus the harness,
/// never the current scenario alone — report it as the campaign-level peak,
/// not a per-run cost.
double peak_rss_mb();

/// Per-run RSS attribution: sample the high-water mark around one run and
/// report how much that run grew it. A delta of 0 means the run fit inside
/// memory an earlier run already touched ("<= previous peak", not "no
/// allocations"), and under concurrent execution (MLTCP_THREADS > 1) a
/// neighbour's growth can land in this run's window — deltas are only
/// attributable in serial campaigns.
struct RssProbe {
  double before_mb = 0.0;
  double after_mb = 0.0;

  static RssProbe begin() { return RssProbe{peak_rss_mb(), 0.0}; }
  void end() { after_mb = peak_rss_mb(); }
  double delta_mb() const { return after_mb - before_mb; }
};

/// ---- report helpers (stdout, markdown-ish tables) ----

void print_header(const std::string& title);
void print_series(const std::string& name, const std::vector<double>& xs);
void print_row(const std::vector<std::string>& cells);

/// ---- campaign execution ----

/// Thread options for a bench's parameter sweep: MLTCP_THREADS environment
/// variable, 0/unset = hardware concurrency, 1 = serial reference run.
/// Every bench shards its sweep through runner::run_campaign with these
/// options; results are keyed by spec index, so the printed output and any
/// CSV are byte-identical at every thread count.
runner::CampaignOptions campaign_options();

/// Writes an aggregated campaign CSV to results_dir()/<name>.csv.
void write_sink(const runner::CsvSink& sink, const std::string& name);

/// ---- machine-readable results ----

/// Directory where benches drop CSVs (created on demand). Defaults to
/// "results/", overridable via the MLTCP_RESULTS_DIR environment variable.
std::string results_dir();

/// Opens results_dir()/<name>.csv with the given header.
std::unique_ptr<sim::CsvWriter> open_csv(
    const std::string& name, const std::vector<std::string>& header);

}  // namespace mltcp::bench
