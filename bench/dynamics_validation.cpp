// Cross-model validation and transport-level visibility:
//  (V1) cwnd/gain time series of one MLTCP flow — Eq. 1 at work: the gain
//       ramps from Intercept to Slope+Intercept within each iteration and
//       resets at the boundary (CSV: results/v1_cwnd_gain.csv).
//  (V2) packet-level vs fluid-model convergence trajectories for the same
//       3-job scenario — the fluid model is only trustworthy for sweeps if
//       it tracks the packet simulator.
//  (V3) multi-job analytic gradient descent (multi_job_step) vs the fluid
//       model for 4 jobs — §4's gradient-descent claim beyond two jobs.

#include <cmath>
#include <cstdio>
#include <vector>

#include "analysis/flow_monitor.hpp"
#include "analysis/fluid_model.hpp"
#include "analysis/metrics.hpp"
#include "analysis/shift.hpp"
#include "bench_common.hpp"

namespace {

using namespace mltcp;

void v1_cwnd_gain_traces() {
  bench::print_header("V1: cwnd and gain of one MLTCP flow (2-job run)");
  auto exp = bench::make_experiment();
  const workload::ModelProfile gpt2 = workload::gpt2_profile();
  const core::MltcpConfig cfg = bench::mltcp_config_for(gpt2, 1e9, 1);

  std::vector<workload::Job*> jobs;
  for (int i = 0; i < 2; ++i) {
    bench::ProfileJobOptions opts;
    opts.max_iterations = 10;
    opts.num_flows = 1;
    jobs.push_back(bench::add_profile_job(*exp, gpt2, i,
                                          core::mltcp_reno_factory(cfg),
                                          opts));
  }
  analysis::FlowMonitor monitor(exp->sim,
                                exp->cluster->flows_of(0)[0]->sender(),
                                sim::milliseconds(20));
  exp->cluster->start_all();
  exp->sim.run_until(sim::seconds(20));

  auto csv = bench::open_csv("v1_cwnd_gain",
                             {"t_s", "cwnd", "gain", "srtt_us", "inflight"});
  std::printf("t_s,cwnd,gain (every 10th sample)\n");
  const auto& samples = monitor.samples();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto& s = samples[i];
    csv->row(std::vector<double>{sim::to_seconds(s.when), s.cwnd, s.gain,
                                 sim::to_microseconds(s.srtt),
                                 static_cast<double>(s.inflight)});
    if (i % 10 == 0 && sim::to_seconds(s.when) < 6.0) {
      std::printf("%.2f,%.1f,%.2f\n", sim::to_seconds(s.when), s.cwnd,
                  s.gain);
    }
  }
  double max_gain = 0.0;
  double min_gain = 10.0;
  for (const auto& s : samples) {
    if (s.inflight > 0) {
      max_gain = std::max(max_gain, s.gain);
      min_gain = std::min(min_gain, s.gain);
    }
  }
  std::printf("gain range while sending: [%.2f, %.2f] "
              "(expected [0.25, 2.00])\n",
              min_gain, max_gain);
}

void v2_fluid_vs_packet() {
  bench::print_header("V2: packet-level vs fluid convergence (3 GPT-2 jobs)");
  const workload::ModelProfile gpt2 = workload::gpt2_profile();
  constexpr int kIters = 35;

  // Packet level.
  auto exp = bench::make_experiment();
  const core::MltcpConfig cfg = bench::mltcp_config_for(gpt2, 1e9, 4);
  std::vector<workload::Job*> jobs;
  for (int i = 0; i < 3; ++i) {
    bench::ProfileJobOptions opts;
    opts.max_iterations = kIters;
    jobs.push_back(bench::add_profile_job(*exp, gpt2, i,
                                          core::mltcp_reno_factory(cfg),
                                          opts));
  }
  exp->cluster->start_all();
  exp->sim.run_until(sim::seconds(130));

  // Fluid.
  analysis::FluidConfig fc;
  fc.dt = 5e-4;
  std::vector<analysis::FluidJobSpec> fjobs(3);
  for (int j = 0; j < 3; ++j) {
    fjobs[j].comm_seconds = sim::to_seconds(workload::comm_time(gpt2));
    fjobs[j].compute_seconds = sim::to_seconds(workload::compute_time(gpt2));
    fjobs[j].start_offset = 0.005 * j;
  }
  analysis::FluidSimulator fluid(fc, fjobs);
  if (!fluid.run_iterations(kIters, 1e4)) {
    std::printf("WARNING: fluid run truncated at t=%.1f before %d "
                "iterations; per-iteration means below under-count the "
                "slow tail\n",
                fluid.now(), kIters);
  }

  auto csv = bench::open_csv("v2_fluid_vs_packet",
                             {"iter", "packet_mean_s", "fluid_mean_s"});
  std::printf("iter,packet_mean_s,fluid_mean_s\n");
  for (int k = 0; k < kIters; k += 2) {
    double packet_mean = 0.0;
    double fluid_mean = 0.0;
    for (int j = 0; j < 3; ++j) {
      const auto pt = jobs[j]->iteration_times_seconds();
      const auto ft = fluid.iteration_times(j);
      packet_mean += k < static_cast<int>(pt.size()) ? pt[k] / 3.0 : 0.0;
      fluid_mean += k < static_cast<int>(ft.size()) ? ft[k] / 3.0 : 0.0;
    }
    csv->row(std::vector<double>{static_cast<double>(k), packet_mean,
                                 fluid_mean});
    std::printf("%d,%.3f,%.3f\n", k, packet_mean, fluid_mean);
  }
  std::printf("Expected shape: both trajectories decay from ~2.4-2.7s to the "
              "1.8s ideal; the packet path converges somewhat slower (loss "
              "noise, slow start).\n");
}

void v3_multi_job_descent() {
  bench::print_header("V3: analytic multi-job descent vs fluid (4 jobs, "
                      "a=0.2)");
  analysis::ShiftParams p;
  p.alpha = 0.2;
  p.period = 1.8;

  const std::vector<double> starts = {0.0, 0.05, 0.10, 0.15};
  const auto descent = analysis::multi_descend(starts, p, 300, 1e-4);

  analysis::FluidConfig fc;
  fc.dt = 2e-4;
  std::vector<analysis::FluidJobSpec> jobs(4);
  for (std::size_t j = 0; j < 4; ++j) {
    jobs[j].comm_seconds = p.alpha * p.period;
    jobs[j].compute_seconds = (1 - p.alpha) * p.period;
    jobs[j].start_offset = starts[j];
  }
  analysis::FluidSimulator fluid(fc, jobs);
  if (!fluid.run_iterations(60, 1e4)) {
    std::printf("WARNING: fluid run truncated before 60 iterations; the "
                "offset comparison below is over a shorter trajectory\n");
  }

  std::printf("analytic: converged=%s after %d iterations, final loss "
              "%.5f\n",
              descent.converged ? "yes" : "no", descent.iterations,
              analysis::multi_job_loss(descent.trajectory.back(), p));

  // Compare pairwise offsets (relative to job 0) at convergence.
  const auto& final_offsets = descent.trajectory.back();
  std::printf("job,analytic_rel_offset_s,fluid_rel_offset_s\n");
  for (std::size_t j = 1; j < 4; ++j) {
    double analytic = std::fmod(final_offsets[j] - final_offsets[0],
                                p.period);
    if (analytic < 0) analytic += p.period;
    const auto& r0 = fluid.iterations(0);
    const auto& rj = fluid.iterations(j);
    const std::size_t k = std::min(r0.size(), rj.size()) - 1;
    double fluid_off = std::fmod(
        rj[k].comm_start - r0[k].comm_start, p.period);
    if (fluid_off < 0) fluid_off += p.period;
    std::printf("%zu,%.3f,%.3f\n", j, analytic, fluid_off);
  }
  std::printf("Expected shape: both settle into pairwise separations of at "
              "least a*T = %.2fs (order may differ; any interleaved "
              "permutation is a global optimum).\n",
              p.alpha * p.period);
}

}  // namespace

int main() {
  std::printf("Model cross-validation for the MLTCP reproduction.\n");
  v1_cwnd_gain_traces();
  v2_fluid_vs_packet();
  v3_multi_job_descent();
  return 0;
}
