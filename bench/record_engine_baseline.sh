#!/usr/bin/env bash
# Records event-engine benchmark numbers into results/BENCH_engine.json so
# the perf trajectory is tracked in-repo from this point on.
#
# Runs the event-queue/timer microbenchmarks (google-benchmark JSON output)
# and, unless SKIP_SCALING=1, the campaign-runner scaling benchmark, then
# merges both into the JSON file. Existing sections other than the one being
# written are preserved, so the recorded pre-change baseline survives
# re-runs.
#
# Usage:
#   bench/record_engine_baseline.sh                 # record into "current"
#   SECTION=mylabel bench/record_engine_baseline.sh # record a named section
#   BUILD_DIR=/path/to/build MIN_TIME=0.5 SKIP_SCALING=1 ...
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"
OUT="$ROOT/results/BENCH_engine.json"
SECTION="${SECTION:-current}"
MIN_TIME="${MIN_TIME:-0.2}"   # plain seconds; this benchmark lib rejects "s"
SKIP_SCALING="${SKIP_SCALING:-0}"

MICRO_JSON="$BUILD/engine_micro.json"
SCALING_TXT="$BUILD/engine_scaling.txt"

"$BUILD/bench/micro_benchmarks" \
  --benchmark_filter='EventQueue|Timer' \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json > "$MICRO_JSON"

if [ "$SKIP_SCALING" != "1" ]; then
  "$BUILD/bench/runner_scaling" | tee "$SCALING_TXT"
else
  : > "$SCALING_TXT"
fi

python3 - "$OUT" "$SECTION" "$MICRO_JSON" "$SCALING_TXT" <<'PY'
import json, re, sys

out_path, section, micro_path, scaling_path = sys.argv[1:5]

with open(micro_path) as f:
    micro = json.load(f)

bench = {}
for b in micro.get("benchmarks", []):
    # With repetitions + aggregates-only we get mean/median/stddev rows;
    # keep the median as the representative number.
    if b.get("aggregate_name", "") not in ("", "median"):
        continue
    name = b["name"].split("/")[0].replace("_median", "")
    bench[name] = {
        "items_per_second": round(b.get("items_per_second", 0.0), 1),
        "real_time_ns": round(b.get("real_time", 0.0), 2),
    }

scaling = {}
with open(scaling_path) as f:
    for line in f:
        m = re.match(r"threads=(\d+): ([0-9.]+)s", line)
        if m:
            scaling[f"threads_{m.group(1)}_wall_seconds"] = float(m.group(2))

try:
    with open(out_path) as f:
        doc = json.load(f)
except FileNotFoundError:
    doc = {"schema": 1, "note": "event-engine benchmark record; see "
           "bench/record_engine_baseline.sh and DESIGN.md 'Event engine'"}

# Merge into the section so a SKIP_SCALING re-run keeps recorded scaling
# numbers.
doc.setdefault(section, {})["benchmarks"] = bench
if scaling:
    doc[section]["runner_scaling"] = scaling

with open(out_path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote section '{section}' to {out_path}")
PY
