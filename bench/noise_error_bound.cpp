// §4 claim: with zero-mean Gaussian noise of std sigma in each job's
// iteration time, MLTCP's convergence error is normally distributed with
// standard deviation <= 2*sigma*(1 + Intercept/Slope).
//
// We run the two-job fluid model to steady state for a sweep of sigma and
// compare the measured std of the offset (around T/2, a = 1/2) against the
// closed-form bound, and also validate the bound on the discrete
// gradient-descent recursion directly.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "analysis/fluid_model.hpp"
#include "analysis/metrics.hpp"
#include "analysis/shift.hpp"
#include "bench_common.hpp"
#include "sim/random.hpp"

namespace {

using namespace mltcp;

/// Measured steady-state offset deviation from the fluid model.
double fluid_error_std(double sigma, const analysis::ShiftParams& p,
                       std::uint64_t seed) {
  analysis::FluidConfig fc;
  fc.dt = 2e-4;
  fc.seed = seed;
  fc.f = std::make_shared<core::LinearAggressiveness>(p.slope, p.intercept);

  const double comm = p.alpha * p.period;
  std::vector<analysis::FluidJobSpec> jobs(2);
  for (auto& j : jobs) {
    j.comm_seconds = comm;
    j.compute_seconds = p.period - comm;
    j.noise_stddev = sigma;
  }
  jobs[1].start_offset = 0.25 * p.period;
  analysis::FluidSimulator fluid(fc, jobs);
  const int total_iters = 400;
  if (!fluid.run_iterations(total_iters, 1e5)) {
    // A truncated run would bias the steady-state error std towards the
    // transient; fail loudly instead of folding it into the sweep.
    std::fprintf(stderr,
                 "FATAL: fluid run truncated (sigma=%.4f seed=%llu): "
                 "only %zu/%zu iterations\n",
                 sigma, static_cast<unsigned long long>(seed),
                 std::min(fluid.iterations(0).size(),
                          fluid.iterations(1).size()),
                 static_cast<std::size_t>(total_iters));
    std::exit(1);
  }

  const auto& r0 = fluid.iterations(0);
  const auto& r1 = fluid.iterations(1);
  const std::size_t n = std::min(r0.size(), r1.size());
  std::vector<double> errors;
  for (std::size_t i = 100; i < n; ++i) {  // skip convergence transient
    double off = std::fmod(r1[i].comm_start - r0[i].comm_start, p.period);
    if (off < 0) off += p.period;
    errors.push_back(off - p.period / 2.0);
  }
  return analysis::stddev(errors);
}

/// The same measurement on the §4 recursion itself:
/// D_{i+1} = D_i + Shift(D_i) + (n1 - n0), n ~ N(0, sigma).
double recursion_error_std(double sigma, const analysis::ShiftParams& p,
                           std::uint64_t seed) {
  sim::Rng rng(seed);
  double d = 0.25 * p.period;
  std::vector<double> errors;
  for (int i = 0; i < 4000; ++i) {
    d += analysis::shift(d, p) + rng.normal(0.0, sigma) -
         rng.normal(0.0, sigma);
    d = std::fmod(d, p.period);
    if (d < 0) d += p.period;
    if (i >= 200) errors.push_back(d - p.period / 2.0);
  }
  return analysis::stddev(errors);
}

}  // namespace

int main() {
  std::printf("Validates the §4 approximation-error bound of MLTCP "
              "(HotNets'24):\nerror std <= 2*sigma*(1 + Intercept/Slope) "
              "= %.3f * sigma for Slope=1.75, Intercept=0.25.\n",
              2.0 * (1.0 + 0.25 / 1.75));

  analysis::ShiftParams p;
  p.alpha = 0.5;
  p.period = 1.8;

  // Each sigma is an independent 400-iteration fluid run plus a 4000-step
  // recursion: shard the sweep across threads, print rows in sweep order.
  struct Row {
    double bound;
    double fluid;
    double recursion;
  };
  const std::vector<double> sigmas = {0.002, 0.005, 0.01, 0.02, 0.04};
  const std::vector<Row> rows = runner::run_campaign<double, Row>(
      sigmas,
      [&p](const double sigma, std::size_t) {
        return Row{
            analysis::predicted_error_stddev(sigma, p.slope, p.intercept),
            fluid_error_std(sigma, p, 1234),
            recursion_error_std(sigma, p, 77)};
      },
      mltcp::bench::campaign_options());

  std::printf("\nsigma_s,predicted_bound_s,fluid_measured_s,"
              "recursion_measured_s\n");
  for (std::size_t i = 0; i < sigmas.size(); ++i) {
    const Row& r = rows[i];
    std::printf("%.3f,%.4f,%.4f,%.4f%s\n", sigmas[i], r.bound, r.fluid,
                r.recursion,
                (r.fluid <= r.bound * 1.15 && r.recursion <= r.bound * 1.15)
                    ? ""
                    : "  <-- exceeds bound");
  }

  std::printf("\nExpected shape: measured error grows linearly with sigma "
              "and stays at or below the bound.\n");
  return 0;
}
