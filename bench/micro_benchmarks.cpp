// Engine microbenchmarks (google-benchmark): event-queue throughput, the
// packet forwarding path, aggressiveness-function evaluation and the
// Algorithm 1 tracker — the per-ACK costs that would sit on the kernel
// hot path in a real deployment.

#include <benchmark/benchmark.h>

#include "core/aggressiveness.hpp"
#include "core/iteration_tracker.hpp"
#include "core/mltcp.hpp"
#include "net/topology.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "tcp/flow.hpp"

namespace {

using namespace mltcp;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < 1024; ++i) q.schedule(i * 7 % 997, [] {});
    while (!q.empty()) q.pop_and_run();
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

// The closures the simulator actually schedules are not empty: every hop
// captures a net::Packet by value (link transmission-done, propagation
// delivery — see net/link.cpp). This is the shape where the engine's inline
// callback storage matters: a type-erased std::function would heap-allocate
// each one.
void BM_EventQueuePacketClosures(benchmark::State& state) {
  std::int64_t sink = 0;
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < 1024; ++i) {
      net::Packet pkt;
      pkt.seq = i;
      pkt.size_bytes = 1500;
      q.schedule(i * 7 % 997, [pkt, &sink] { sink += pkt.seq; });
    }
    while (!q.empty()) q.pop_and_run();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueuePacketClosures);

// Steady state: a long-lived queue holding a packet-scale pending set, each
// event scheduling its successor — the pattern of an in-flight packet train.
// This is the regime the engine keeps allocation-free.
void BM_EventQueueSteadyState(benchmark::State& state) {
  sim::EventQueue q;
  std::int64_t sink = 0;
  sim::SimTime now = 0;
  for (int i = 0; i < 256; ++i) {
    net::Packet pkt;
    pkt.seq = i;
    q.schedule(1 + i * 37 % 509, [pkt, &sink] { sink += pkt.seq; });
  }
  for (auto _ : state) {
    now = q.pop_and_run();
    net::Packet pkt;
    pkt.seq = sink;
    q.schedule(now + 1 + sink * 37 % 509, [pkt, &sink] { sink += pkt.seq; });
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueSteadyState);

// RTO-style churn: most scheduled events never fire — they are cancelled and
// replaced long before their deadline. Exercises generation-tag cancellation
// and the stale-entry compaction that keeps the heap bounded.
void BM_EventQueueCancelChurn(benchmark::State& state) {
  sim::EventQueue q;
  sim::SimTime now = 0;
  for (auto _ : state) {
    const sim::EventId id = q.schedule(now + 1'000'000, [] {});
    q.cancel(id);
    q.schedule(now + 1, [] {});
    now = q.pop_and_run();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueCancelChurn);

// Timer rearm storm: the same deadline-replacement pattern as above but
// through the reusable QueueTimer, which keeps its callback in place.
void BM_TimerRearm(benchmark::State& state) {
  sim::EventQueue q;
  std::int64_t fired = 0;
  sim::QueueTimer rto(q, [&fired] { ++fired; });
  sim::SimTime now = 0;
  for (auto _ : state) {
    rto.arm(now + 1'000'000);  // pushed out, never fires
    q.schedule(now + 1, [] {});
    now = q.pop_and_run();
  }
  rto.cancel();
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TimerRearm);

void BM_AggressivenessLinear(benchmark::State& state) {
  core::LinearAggressiveness f;
  double r = 0.0;
  double acc = 0.0;
  for (auto _ : state) {
    acc += f(r);
    r += 1e-6;
    if (r > 1.0) r = 0.0;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_AggressivenessLinear);

void BM_IterationTrackerOnAck(benchmark::State& state) {
  core::TrackerConfig cfg;
  cfg.total_bytes = 10'000'000;
  cfg.comp_time = sim::milliseconds(100);
  core::IterationTracker tracker(cfg);
  sim::SimTime now = 1;
  for (auto _ : state) {
    tracker.on_ack(2, now);
    now += sim::microseconds(10);
  }
  benchmark::DoNotOptimize(tracker.bytes_ratio());
}
BENCHMARK(BM_IterationTrackerOnAck);

// pFabric steady state at a held backlog: every iteration admits one packet
// into a full queue (forcing the eviction rule) and dequeues the best one.
// Cost must stay logarithmic in the backlog — the min-max heap's point over
// the ordered-container rebuild, which went linear under overload.
void BM_PfabricAdmissionDequeue(benchmark::State& state) {
  const std::int64_t depth = state.range(0);
  net::PfabricPriorityQueue q(depth * 1500);
  std::uint64_t rng = 0x9E3779B97F4A7C15ULL;
  const auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  const auto make = [&next](std::int64_t i) {
    net::Packet p;
    p.seq = i;
    p.size_bytes = 1500;
    p.priority = static_cast<std::int64_t>(next() % 1024);
    return p;
  };
  std::int64_t i = 0;
  while (q.backlog_packets() < static_cast<std::size_t>(depth)) {
    q.enqueue(make(i++), 0);
  }
  std::int64_t sink = 0;
  for (auto _ : state) {
    q.enqueue(make(i++), 0);  // Full: admits by eviction or drops.
    if (auto pkt = q.dequeue(0)) sink += pkt->seq;
    q.enqueue(make(i++), 0);  // Refill so the backlog is held at `depth`.
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PfabricAdmissionDequeue)->RangeMultiplier(8)->Range(16, 8192);

// Route-table construction for a cluster-sized fabric: one BFS per
// destination host over the adjacency (O(hosts * edges); see
// Topology::route_build_stats()). Argument = racks at 16 hosts/rack,
// 4 spines — 256 racks routes a 4096-host fabric per iteration.
void BM_BuildRoutesLeafSpine(benchmark::State& state) {
  sim::Simulator sim;
  net::LeafSpineConfig cfg;
  cfg.racks = static_cast<int>(state.range(0));
  cfg.hosts_per_rack = 16;
  cfg.spines = 4;
  net::LeafSpine ls = net::make_leaf_spine(sim, cfg);
  for (auto _ : state) {
    ls.topology->build_routes();
    benchmark::DoNotOptimize(ls.tors[0]->route(ls.racks.back().back()->id()));
  }
  const auto& st = ls.topology->route_build_stats();
  state.SetItemsProcessed(state.iterations() * st.destinations);
  state.counters["edges_scanned"] = static_cast<double>(st.edges_scanned);
}
BENCHMARK(BM_BuildRoutesLeafSpine)->RangeMultiplier(4)->Range(4, 256);

void BM_PacketTransferOneMegabyte(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    net::DumbbellConfig cfg;
    cfg.hosts_per_side = 1;
    auto d = net::make_dumbbell(sim, cfg);
    tcp::TcpFlow flow(sim, *d.left[0], *d.right[0], 1,
                      std::make_unique<tcp::RenoCC>());
    bool done = false;
    flow.send_message(1'000'000, [&](sim::SimTime) { done = true; });
    sim.run();
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_PacketTransferOneMegabyte);

}  // namespace
