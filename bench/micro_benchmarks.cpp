// Engine microbenchmarks (google-benchmark): event-queue throughput, the
// packet forwarding path, aggressiveness-function evaluation and the
// Algorithm 1 tracker — the per-ACK costs that would sit on the kernel
// hot path in a real deployment.

#include <benchmark/benchmark.h>

#include "core/aggressiveness.hpp"
#include "core/iteration_tracker.hpp"
#include "core/mltcp.hpp"
#include "net/topology.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "tcp/flow.hpp"

namespace {

using namespace mltcp;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < 1024; ++i) q.schedule(i * 7 % 997, [] {});
    while (!q.empty()) q.pop_and_run();
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_AggressivenessLinear(benchmark::State& state) {
  core::LinearAggressiveness f;
  double r = 0.0;
  double acc = 0.0;
  for (auto _ : state) {
    acc += f(r);
    r += 1e-6;
    if (r > 1.0) r = 0.0;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_AggressivenessLinear);

void BM_IterationTrackerOnAck(benchmark::State& state) {
  core::TrackerConfig cfg;
  cfg.total_bytes = 10'000'000;
  cfg.comp_time = sim::milliseconds(100);
  core::IterationTracker tracker(cfg);
  sim::SimTime now = 1;
  for (auto _ : state) {
    tracker.on_ack(2, now);
    now += sim::microseconds(10);
  }
  benchmark::DoNotOptimize(tracker.bytes_ratio());
}
BENCHMARK(BM_IterationTrackerOnAck);

void BM_PacketTransferOneMegabyte(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    net::DumbbellConfig cfg;
    cfg.hosts_per_side = 1;
    auto d = net::make_dumbbell(sim, cfg);
    tcp::TcpFlow flow(sim, *d.left[0], *d.right[0], 1,
                      std::make_unique<tcp::RenoCC>());
    bool done = false;
    flow.send_message(1'000'000, [&](sim::SimTime) { done = true; });
    sim.run();
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_PacketTransferOneMegabyte);

}  // namespace
